package dataset

import (
	"errors"
	"testing"
	"testing/quick"

	"rpol/internal/tensor"
)

func smallConfig() Config {
	return Config{
		Name:       "test",
		NumClasses: 4,
		Dim:        8,
		Size:       200,
		ClusterStd: 0.3,
		Seed:       1,
	}
}

func TestGenerateBasic(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 200 {
		t.Errorf("Len = %d", ds.Len())
	}
	if ds.NumClasses != 4 || ds.Dim != 8 {
		t.Errorf("meta = %d classes, %d dim", ds.NumClasses, ds.Dim)
	}
	counts := make(map[int]int)
	for _, ex := range ds.Examples {
		if ex.Label < 0 || ex.Label >= 4 {
			t.Fatalf("label %d out of range", ex.Label)
		}
		if len(ex.Features) != 8 {
			t.Fatalf("feature dim %d", len(ex.Features))
		}
		counts[ex.Label]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 50 {
			t.Errorf("class %d count = %d, want 50", c, counts[c])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Examples {
		if a.Examples[i].Label != b.Examples[i].Label {
			t.Fatalf("labels differ at %d", i)
		}
		if !a.Examples[i].Features.Equal(b.Examples[i].Features, 0) {
			t.Fatalf("features differ at %d", i)
		}
	}
	cfg := smallConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Examples[0].Features.Equal(c.Examples[0].Features, 0) {
		t.Error("different seeds should give different data")
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []Config{
		{NumClasses: 1, Dim: 4, Size: 10, ClusterStd: 1},
		{NumClasses: 2, Dim: 0, Size: 10, ClusterStd: 1},
		{NumClasses: 10, Dim: 4, Size: 5, ClusterStd: 1},
		{NumClasses: 2, Dim: 4, Size: 10, ClusterStd: 0},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); !errors.Is(err, ErrEmptyConfig) {
			t.Errorf("case %d: err = %v, want ErrEmptyConfig", i, err)
		}
	}
}

func TestAt(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.At(0); err != nil {
		t.Errorf("At(0) err = %v", err)
	}
	if _, err := ds.At(-1); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("At(-1) err = %v", err)
	}
	if _, err := ds.At(ds.Len()); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("At(len) err = %v", err)
	}
}

func TestPartitionEqual(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 5 {
		t.Fatalf("shards = %d", len(shards))
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.NumClasses != ds.NumClasses || s.Dim != ds.Dim {
			t.Error("shard metadata lost")
		}
	}
	if total != ds.Len() {
		t.Errorf("partition loses examples: %d != %d", total, ds.Len())
	}
}

func TestPartitionRemainder(t *testing.T) {
	cfg := smallConfig()
	cfg.Size = 203 // not divisible by 5
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != 203 {
		t.Errorf("remainder lost: %d", total)
	}
	if shards[4].Len() < shards[0].Len() {
		t.Error("last shard must absorb the remainder")
	}
}

func TestPartitionErrors(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Partition(0); !errors.Is(err, ErrBadSplit) {
		t.Errorf("Partition(0) err = %v", err)
	}
	if _, err := ds.Partition(ds.Len() + 1); !errors.Is(err, ErrBadSplit) {
		t.Errorf("Partition(too many) err = %v", err)
	}
}

func TestSplitTrainTest(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := ds.SplitTrainTest(0.25)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len()+test.Len() != ds.Len() {
		t.Errorf("split loses examples")
	}
	if test.Len() != 50 {
		t.Errorf("test size = %d, want 50", test.Len())
	}
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		if _, _, err := ds.SplitTrainTest(bad); !errors.Is(err, ErrBadSplit) {
			t.Errorf("SplitTrainTest(%v) err = %v", bad, err)
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[int]int)
	for _, ex := range ds.Examples {
		before[ex.Label]++
	}
	ds.Shuffle(tensor.NewRNG(42))
	after := make(map[int]int)
	for _, ex := range ds.Examples {
		after[ex.Label]++
	}
	for k, v := range before {
		if after[k] != v {
			t.Errorf("class %d count changed: %d -> %d", k, v, after[k])
		}
	}
}

func TestShardsAreIID(t *testing.T) {
	// After shuffling, each shard should contain roughly equal class shares —
	// the i.i.d. property that adaptive LSH calibration relies on (Sec. V-C).
	cfg := smallConfig()
	cfg.Size = 4000
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := ds.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	for si, s := range shards {
		counts := make(map[int]int)
		for _, ex := range s.Examples {
			counts[ex.Label]++
		}
		expected := s.Len() / cfg.NumClasses
		for c := 0; c < cfg.NumClasses; c++ {
			if counts[c] < expected/2 || counts[c] > expected*2 {
				t.Errorf("shard %d class %d count %d far from expected %d", si, c, counts[c], expected)
			}
		}
	}
}

// Property: Partition never loses or duplicates examples for any shard count.
func TestPartitionMassProperty(t *testing.T) {
	ds, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(nRaw uint8) bool {
		n := int(nRaw)%ds.Len() + 1
		shards, err := ds.Partition(n)
		if err != nil {
			return false
		}
		total := 0
		for _, s := range shards {
			total += s.Len()
		}
		return total == ds.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
