// Package dataset provides the labelled training data substrate for the
// RPoL reproduction. The paper evaluates on CIFAR-10, CIFAR-100, and
// ImageNet; those corpora are proprietary-scale downloads that a pure-Go,
// offline reproduction cannot ship, so this package generates synthetic
// classification datasets with the same interface properties the protocol
// depends on:
//
//   - labelled examples addressable by index (for the PRF batch schedule),
//   - random shuffling and equal partitioning into i.i.d. sub-datasets
//     (the manager's task-initialization step and the (n+1)-shard split
//     used by adaptive LSH calibration, Sec. V-C),
//   - a train/test divide with the test set withheld until block proposal
//     (the PoUW consensus rule, Sec. III-A).
//
// The synthetic generator draws each class from a Gaussian cluster in
// feature space, producing tasks that are genuinely learnable by the
// internal/nn trainer — model accuracy rises with honest training and
// collapses under the paper's attacks, which is what Figures 3 and 6 need.
package dataset

import (
	"errors"
	"fmt"

	"rpol/internal/tensor"
)

// Example is a single labelled data point.
type Example struct {
	Features tensor.Vector
	Label    int
}

// Dataset is an indexable collection of labelled examples.
type Dataset struct {
	Examples   []Example
	NumClasses int
	Dim        int // feature dimensionality
}

// Errors returned by dataset operations.
var (
	ErrBadSplit    = errors.New("dataset: invalid split")
	ErrOutOfRange  = errors.New("dataset: index out of range")
	ErrEmptyConfig = errors.New("dataset: invalid generator config")
)

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Examples) }

// At returns the example at index i.
func (d *Dataset) At(i int) (Example, error) {
	if i < 0 || i >= len(d.Examples) {
		return Example{}, fmt.Errorf("index %d of %d: %w", i, len(d.Examples), ErrOutOfRange)
	}
	return d.Examples[i], nil
}

// Shuffle permutes the examples in place using rng, mirroring the manager's
// "randomly shuffles the dataset" task-initialization step.
func (d *Dataset) Shuffle(rng *tensor.RNG) {
	rng.Shuffle(len(d.Examples), func(i, j int) {
		d.Examples[i], d.Examples[j] = d.Examples[j], d.Examples[i]
	})
}

// Partition splits the dataset into n equal shards (the last shard absorbs
// the remainder). Examples are not copied; shards share backing storage with
// the parent. Because the parent is shuffled first, shards are i.i.d.
func (d *Dataset) Partition(n int) ([]*Dataset, error) {
	if n <= 0 || n > len(d.Examples) {
		return nil, fmt.Errorf("%d shards over %d examples: %w", n, len(d.Examples), ErrBadSplit)
	}
	per := len(d.Examples) / n
	shards := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		lo := i * per
		hi := lo + per
		if i == n-1 {
			hi = len(d.Examples)
		}
		shards[i] = &Dataset{
			Examples:   d.Examples[lo:hi],
			NumClasses: d.NumClasses,
			Dim:        d.Dim,
		}
	}
	return shards, nil
}

// SplitTrainTest splits off the last testFrac of the dataset as a held-out
// test set. In the PoUW system the test set is published only after models
// are proposed; the blockchain substrate enforces that, this method only
// carves the data.
func (d *Dataset) SplitTrainTest(testFrac float64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("test fraction %v: %w", testFrac, ErrBadSplit)
	}
	cut := len(d.Examples) - int(float64(len(d.Examples))*testFrac)
	if cut <= 0 || cut >= len(d.Examples) {
		return nil, nil, fmt.Errorf("cut %d of %d: %w", cut, len(d.Examples), ErrBadSplit)
	}
	train = &Dataset{Examples: d.Examples[:cut], NumClasses: d.NumClasses, Dim: d.Dim}
	test = &Dataset{Examples: d.Examples[cut:], NumClasses: d.NumClasses, Dim: d.Dim}
	return train, test, nil
}

// Config describes a synthetic classification task.
type Config struct {
	Name       string  // human-readable task name, e.g. "cifar10-proxy"
	NumClasses int     // number of Gaussian class clusters
	Dim        int     // feature dimensionality
	Size       int     // total number of examples
	ClusterStd float64 // within-class standard deviation (task difficulty)
	Seed       int64   // generator seed; same seed ⇒ identical dataset
}

// Validate checks the generator configuration.
func (c Config) Validate() error {
	switch {
	case c.NumClasses < 2:
		return fmt.Errorf("classes %d: %w", c.NumClasses, ErrEmptyConfig)
	case c.Dim < 1:
		return fmt.Errorf("dim %d: %w", c.Dim, ErrEmptyConfig)
	case c.Size < c.NumClasses:
		return fmt.Errorf("size %d < classes %d: %w", c.Size, c.NumClasses, ErrEmptyConfig)
	case c.ClusterStd <= 0:
		return fmt.Errorf("cluster std %v: %w", c.ClusterStd, ErrEmptyConfig)
	}
	return nil
}

// Generate builds a synthetic dataset per the config. Class c's examples are
// drawn from N(μ_c, ClusterStd²·I) where the class means μ_c are themselves
// drawn from a unit Gaussian, so classes overlap realistically and accuracy
// saturates below 100%.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	means := make([]tensor.Vector, cfg.NumClasses)
	for c := range means {
		means[c] = rng.NormalVector(cfg.Dim, 0, 1)
	}
	examples := make([]Example, cfg.Size)
	for i := range examples {
		label := i % cfg.NumClasses
		features := rng.NormalVector(cfg.Dim, 0, cfg.ClusterStd)
		if err := features.AXPY(1, means[label]); err != nil {
			return nil, err
		}
		examples[i] = Example{Features: features, Label: label}
	}
	ds := &Dataset{Examples: examples, NumClasses: cfg.NumClasses, Dim: cfg.Dim}
	ds.Shuffle(rng)
	return ds, nil
}
