// Package prf provides the pseudo-random function primitives behind RPoL's
// "stochastic-yet-deterministic" mini-batch gradient descent (Sec. V-B) and
// the address-seeded AMLayer weights (Sec. V-A).
//
// In each training step m a worker selects the n-th element of a batch as
// PRF(N·m + n) mod |D_w|, where N is a per-(worker, epoch) nonce issued by
// the manager. Because the schedule is a deterministic function of the nonce,
// the manager can recompute exactly the same batches during verification, yet
// across steps the batches look random — defeating replay attacks in which a
// worker resubmits old results.
package prf

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Nonce is the per-(worker, epoch) seed issued by the pool manager before
// local training starts.
type Nonce uint64

// ErrEmptyDataset is returned when an index into an empty dataset is
// requested.
var ErrEmptyDataset = errors.New("prf: empty dataset")

// PRF is a keyed pseudo-random function based on HMAC-SHA256. The zero value
// is not usable; construct with New.
type PRF struct {
	key []byte
}

// New returns a PRF keyed with key. The key is copied.
func New(key []byte) *PRF {
	k := make([]byte, len(key))
	copy(k, key)
	return &PRF{key: k}
}

// NewFromNonce returns a PRF keyed with the 8-byte big-endian encoding of the
// nonce, matching the paper's PRF(N·m + n) construction where the nonce
// parameterizes the function.
func NewFromNonce(n Nonce) *PRF {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(n))
	return New(buf[:])
}

// Eval returns the PRF output for input x as a uint64 (the first 8 bytes of
// the HMAC digest).
func (p *PRF) Eval(x uint64) uint64 {
	mac := hmac.New(sha256.New, p.key)
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], x)
	mac.Write(buf[:])
	return binary.BigEndian.Uint64(mac.Sum(nil))
}

// EvalBytes returns the full 32-byte PRF output for an arbitrary input.
func (p *PRF) EvalBytes(input []byte) [32]byte {
	mac := hmac.New(sha256.New, p.key)
	mac.Write(input)
	var out [32]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// DataIndex implements the paper's selection rule
// PRF(N·m + n) mod |D_w|: it returns the dataset index of the n-th element of
// the batch at training step m over a dataset of size datasetSize.
func (p *PRF) DataIndex(step, n, datasetSize int) (int, error) {
	if datasetSize <= 0 {
		return 0, ErrEmptyDataset
	}
	x := uint64(step)*uint64(batchStride) + uint64(n)
	return int(p.Eval(x) % uint64(datasetSize)), nil
}

// batchStride separates the PRF input domains of distinct steps. The paper
// writes PRF(N×m + n); using a large constant stride keeps step domains
// disjoint for any batch size up to the stride.
const batchStride = 1 << 20

// BatchIndices returns the dataset indices for the batch at training step
// m with the given batch size over a dataset of datasetSize elements.
// The same (PRF, step) always produces the same batch, which is what lets the
// manager re-execute sampled steps bit-for-bit.
func (p *PRF) BatchIndices(step, batchSize, datasetSize int) ([]int, error) {
	if datasetSize <= 0 {
		return nil, ErrEmptyDataset
	}
	out := make([]int, batchSize)
	for n := range out {
		idx, err := p.DataIndex(step, n, datasetSize)
		if err != nil {
			return nil, err
		}
		out[n] = idx
	}
	return out, nil
}

// DeriveNonce deterministically derives a per-(worker, epoch) nonce from a
// master key. The manager uses it to issue nonces without storing per-worker
// state.
func DeriveNonce(masterKey []byte, workerID string, epoch int) Nonce {
	mac := hmac.New(sha256.New, masterKey)
	mac.Write([]byte(workerID))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(epoch))
	mac.Write(buf[:])
	return Nonce(binary.BigEndian.Uint64(mac.Sum(nil)))
}

// SeedFromString derives a deterministic int64 seed from an arbitrary string
// such as a blockchain address. AMLayer weight generation uses it so that a
// model layer is a pure function of the owner's address.
func SeedFromString(s string) int64 {
	sum := sha256.Sum256([]byte(s))
	return int64(binary.BigEndian.Uint64(sum[:8]) &^ (1 << 63))
}
