package prf

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEvalDeterministic(t *testing.T) {
	p1 := New([]byte("key"))
	p2 := New([]byte("key"))
	if p1.Eval(42) != p2.Eval(42) {
		t.Error("same key/input must give same output")
	}
	if p1.Eval(42) == p1.Eval(43) {
		t.Error("different inputs should give different outputs")
	}
	q := New([]byte("other"))
	if p1.Eval(42) == q.Eval(42) {
		t.Error("different keys should give different outputs")
	}
}

func TestNewCopiesKey(t *testing.T) {
	key := []byte("secret")
	p := New(key)
	before := p.Eval(1)
	key[0] = 'X'
	if p.Eval(1) != before {
		t.Error("PRF must not alias the caller's key slice")
	}
}

func TestNewFromNonce(t *testing.T) {
	a := NewFromNonce(1)
	b := NewFromNonce(1)
	c := NewFromNonce(2)
	if a.Eval(7) != b.Eval(7) {
		t.Error("same nonce must give same PRF")
	}
	if a.Eval(7) == c.Eval(7) {
		t.Error("different nonces should give different PRFs")
	}
}

func TestDataIndexRange(t *testing.T) {
	p := NewFromNonce(9)
	for step := 0; step < 10; step++ {
		for n := 0; n < 10; n++ {
			idx, err := p.DataIndex(step, n, 100)
			if err != nil {
				t.Fatal(err)
			}
			if idx < 0 || idx >= 100 {
				t.Fatalf("index %d out of range", idx)
			}
		}
	}
}

func TestDataIndexEmptyDataset(t *testing.T) {
	p := NewFromNonce(9)
	if _, err := p.DataIndex(0, 0, 0); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("err = %v, want ErrEmptyDataset", err)
	}
	if _, err := p.BatchIndices(0, 4, 0); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("err = %v, want ErrEmptyDataset", err)
	}
}

func TestBatchIndicesReproducible(t *testing.T) {
	p := NewFromNonce(1234)
	a, err := p.BatchIndices(5, 16, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.BatchIndices(5, 16, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("batch not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestBatchesDifferAcrossSteps(t *testing.T) {
	// The stochastic-yet-deterministic property: batches at different steps
	// must be differentiable, or replay attacks would be possible (Sec. V-B).
	p := NewFromNonce(77)
	a, _ := p.BatchIndices(0, 32, 10000)
	b, _ := p.BatchIndices(1, 32, 10000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("consecutive steps produced identical batches")
	}
}

func TestBatchesDifferAcrossNonces(t *testing.T) {
	a, _ := NewFromNonce(1).BatchIndices(0, 32, 10000)
	b, _ := NewFromNonce(2).BatchIndices(0, 32, 10000)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different nonces produced identical batches")
	}
}

func TestDeriveNonceStable(t *testing.T) {
	k := []byte("master")
	if DeriveNonce(k, "w1", 3) != DeriveNonce(k, "w1", 3) {
		t.Error("nonce derivation must be deterministic")
	}
	if DeriveNonce(k, "w1", 3) == DeriveNonce(k, "w1", 4) {
		t.Error("different epochs should give different nonces")
	}
	if DeriveNonce(k, "w1", 3) == DeriveNonce(k, "w2", 3) {
		t.Error("different workers should give different nonces")
	}
	if DeriveNonce(k, "w1", 3) == DeriveNonce([]byte("other"), "w1", 3) {
		t.Error("different master keys should give different nonces")
	}
}

func TestSeedFromString(t *testing.T) {
	s1 := SeedFromString("addr-1")
	if s1 != SeedFromString("addr-1") {
		t.Error("seed must be deterministic")
	}
	if s1 == SeedFromString("addr-2") {
		t.Error("different addresses should give different seeds")
	}
	if s1 < 0 {
		t.Error("seed must be non-negative")
	}
}

// Property: DataIndex always lands inside the dataset.
func TestDataIndexRangeProperty(t *testing.T) {
	p := NewFromNonce(5)
	f := func(step, n uint16, size uint16) bool {
		sz := int(size%5000) + 1
		idx, err := p.DataIndex(int(step), int(n), sz)
		return err == nil && idx >= 0 && idx < sz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: batch distribution is roughly uniform — every index of a small
// dataset is hit when drawing many samples.
func TestBatchCoverage(t *testing.T) {
	p := NewFromNonce(42)
	const size = 10
	seen := make(map[int]bool)
	for step := 0; step < 50; step++ {
		idxs, err := p.BatchIndices(step, 8, size)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range idxs {
			seen[i] = true
		}
	}
	if len(seen) != size {
		t.Errorf("coverage %d/%d after 400 draws", len(seen), size)
	}
}

func TestEvalBytes(t *testing.T) {
	p := New([]byte("k"))
	a := p.EvalBytes([]byte("hello"))
	b := p.EvalBytes([]byte("hello"))
	if a != b {
		t.Error("EvalBytes must be deterministic")
	}
	c := p.EvalBytes([]byte("world"))
	if a == c {
		t.Error("EvalBytes must differ across inputs")
	}
}
