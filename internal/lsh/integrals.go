package lsh

import "errors"

// This file implements Eq. (5) of the paper exactly: the expected LSH
// matching-fail rate for honest participants and matching-pass rate for
// dishonest ones, as integrals of the match probability against the
// reproduction-distance and spoof-distance densities,
//
//	FNR_lsh = ∫_0^β  p_repr(c)·(1 − Pr_lsh(c)) dc,
//	FPR_lsh = ∫_β^∞ p_spoof(c)·Pr_lsh(c) dc.
//
// The Optimize routine uses the paper's near-worst-case point masses
// (all honest errors at α, all spoofs at β); these integrals evaluate the
// rates for arbitrary measured densities — e.g. the normal distributions
// Fig. 4 establishes for reproduction errors.

// ErrBadIntegral is returned for malformed integration bounds.
var ErrBadIntegral = errors.New("lsh: invalid integration bounds")

// integrate runs composite-trapezoid integration of f over [lo, hi].
func integrate(f func(float64) float64, lo, hi float64, steps int) float64 {
	if steps < 1 {
		steps = 256
	}
	h := (hi - lo) / float64(steps)
	sum := (f(lo) + f(hi)) / 2
	for i := 1; i < steps; i++ {
		sum += f(lo + float64(i)*h)
	}
	return sum * h
}

// FNRIntegral evaluates Eq. (5)'s false-negative rate: the probability that
// an honest result, whose reproduction distance is distributed with density
// pRepr over [0, β), fails the LSH match.
func FNRIntegral(pRepr func(float64) float64, beta float64, p Params, steps int) (float64, error) {
	if beta <= 0 {
		return 0, ErrBadIntegral
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	val := integrate(func(c float64) float64 {
		return pRepr(c) * (1 - MatchProb(c, p))
	}, 0, beta, steps)
	return clamp01(val), nil
}

// FPRIntegral evaluates Eq. (5)'s false-positive rate: the probability that
// a spoofed result, whose distance is distributed with density pSpoof over
// [β, upper], passes the LSH match. upper truncates the improper integral;
// choose it several standard deviations past the spoof distribution's mass.
func FPRIntegral(pSpoof func(float64) float64, beta, upper float64, p Params, steps int) (float64, error) {
	if beta <= 0 || upper <= beta {
		return 0, ErrBadIntegral
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	val := integrate(func(c float64) float64 {
		return pSpoof(c) * MatchProb(c, p)
	}, beta, upper, steps)
	return clamp01(val), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
