package lsh

import (
	"math"
	"testing"

	"rpol/internal/stats"
)

func calibratedParams(t *testing.T, alpha, beta float64) Params {
	t.Helper()
	p, _, _, err := Optimize(alpha, beta, OptimizeOptions{KLsh: 16})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFNRIntegralMatchesPointMass(t *testing.T) {
	// With the repro density concentrated tightly at α, the integral must
	// approach the worst-case closed form 1 − Pr_lsh(α).
	alpha, beta := 0.2, 1.0
	p := calibratedParams(t, alpha, beta)
	narrow := func(c float64) float64 { return stats.NormalPDF(c, alpha, alpha/100) }
	got, err := FNRIntegral(narrow, beta, p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	want := FNRAtWorstCase(alpha, p)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("FNR integral %v vs point-mass %v", got, want)
	}
}

func TestFPRIntegralMatchesPointMass(t *testing.T) {
	alpha, beta := 0.2, 1.0
	p := calibratedParams(t, alpha, beta)
	// Spoof distances concentrated entirely just above β (the mean sits
	// 10σ past the bound so effectively no mass is truncated at β).
	spoofMean := beta * 1.01
	narrow := func(c float64) float64 { return stats.NormalPDF(c, spoofMean, beta/1000) }
	got, err := FPRIntegral(narrow, beta, 3*beta, p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	want := FPRAtWorstCase(beta, p)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("FPR integral %v vs worst case %v", got, want)
	}
}

func TestIntegralsWithRealisticDensities(t *testing.T) {
	// Honest errors ~ N(α/2, α/6) (well inside the tolerance): FNR must be
	// far below the worst case. Spoofs ~ N(4β, β/2) (far outside): FPR ≈ 0.
	alpha, beta := 0.2, 1.0
	p := calibratedParams(t, alpha, beta)
	repro := func(c float64) float64 { return stats.NormalPDF(c, alpha/2, alpha/6) }
	fnr, err := FNRIntegral(repro, beta, p, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if worst := FNRAtWorstCase(alpha, p); fnr >= worst {
		t.Errorf("typical-case FNR %v not below worst case %v", fnr, worst)
	}
	spoof := func(c float64) float64 { return stats.NormalPDF(c, 4*beta, beta/2) }
	fpr, err := FPRIntegral(spoof, beta, 10*beta, p, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if fpr > 0.01 {
		t.Errorf("distant-spoof FPR %v, want ≈ 0", fpr)
	}
}

func TestIntegralValidation(t *testing.T) {
	p := Params{R: 1, K: 2, L: 2}
	f := func(float64) float64 { return 1 }
	if _, err := FNRIntegral(f, 0, p, 64); err == nil {
		t.Error("zero beta accepted")
	}
	if _, err := FNRIntegral(f, 1, Params{}, 64); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := FPRIntegral(f, 1, 0.5, p, 64); err == nil {
		t.Error("upper below beta accepted")
	}
	if _, err := FPRIntegral(f, 0, 1, p, 64); err == nil {
		t.Error("zero beta accepted")
	}
}

func TestIntegralsClamped(t *testing.T) {
	// A wildly non-normalized "density" must still produce a rate in [0, 1].
	p := Params{R: 1, K: 1, L: 1}
	huge := func(float64) float64 { return 1e6 }
	got, err := FNRIntegral(huge, 2, p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got < 0 || got > 1 {
		t.Errorf("FNR = %v outside [0,1]", got)
	}
}
