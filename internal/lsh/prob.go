// Package lsh implements the p-stable locality-sensitive hashing that RPoL
// uses for robust, communication-efficient verification (Sec. II-C, V-C).
//
// A family has l groups of k hash functions h(x) = ⌊(a·x + b)/r⌋ with a drawn
// from a 2-stable (Gaussian) distribution and b uniform in [0, r). Two
// vectors match if all k functions agree in at least one group, giving the
// match probability Pr_lsh(c) = 1 − (1 − p(c)^k)^l where p(c) is the
// single-function collision probability at Euclidean distance c.
//
// RPoL replaces "transfer the output weights and compare distances" with
// "commit an LSH digest of the output weights and fuzzy-match it", cutting
// verification communication roughly in half while tolerating the inherent
// reproduction errors of DNN training.
package lsh

import (
	"errors"
	"fmt"
	"math"

	"rpol/internal/stats"
)

// Params are the tunable LSH configuration {r, k, l} from Sec. II-C.
type Params struct {
	R float64 // bucket width
	K int     // hash functions per group (AND)
	L int     // groups (OR)
}

// Validate checks that the parameters are usable.
func (p Params) Validate() error {
	if p.R <= 0 || p.K < 1 || p.L < 1 {
		return fmt.Errorf("lsh: invalid params %+v", p)
	}
	return nil
}

// CollisionProb returns p(c, r): the probability that a single 2-stable hash
// function maps two vectors at Euclidean distance c to the same bucket with
// width r (Datar et al. 2004):
//
//	p(c) = 1 − 2Φ(−r/c) − (2c/(√(2π)·r))·(1 − exp(−r²/(2c²)))
//
// By convention p(0) = 1.
func CollisionProb(c, r float64) float64 {
	if c <= 0 {
		return 1
	}
	if r <= 0 {
		return 0
	}
	t := r / c
	p := 1 - 2*stats.StdNormalCDF(-t) - (2/(math.Sqrt(2*math.Pi)*t))*(1-math.Exp(-t*t/2))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// MatchProb returns Pr_lsh(c, r, k, l) = 1 − (1 − p(c)^k)^l, the probability
// that two vectors at distance c produce matching digests in at least one of
// the l groups.
func MatchProb(c float64, p Params) float64 {
	single := CollisionProb(c, p.R)
	return 1 - math.Pow(1-math.Pow(single, float64(p.K)), float64(p.L))
}

// FNRAtWorstCase returns the paper's near-worst-case false-negative rate
// max(FNR_lsh) = 1 − Pr_lsh(α): the chance an honest result whose
// reproduction error equals α fails the LSH match (Eq. 5/6).
func FNRAtWorstCase(alpha float64, p Params) float64 {
	return 1 - MatchProb(alpha, p)
}

// FPRAtWorstCase returns max(FPR_lsh) = Pr_lsh(β): the chance a spoofed
// result at exactly the dissimilarity threshold β passes the LSH match.
func FPRAtWorstCase(beta float64, p Params) float64 {
	return MatchProb(beta, p)
}

// Errors for calibration inputs.
var (
	ErrBadBounds = errors.New("lsh: need 0 < alpha < beta")
	ErrBadBudget = errors.New("lsh: computational budget K_lsh must allow k·l ≥ 1")
)

// OptimizeOptions configures the simple-additive-weighting search of Eq. (6).
type OptimizeOptions struct {
	// KLsh is the computational budget constraint k·l ≤ K_lsh. The paper's
	// evaluation uses 16 (Sec. VII-D).
	KLsh int
	// WeightFNR and WeightFPR weight the two objectives; equal weights by
	// default.
	WeightFNR, WeightFPR float64
	// RGridSize controls how finely the bucket width r is searched between
	// alpha and a multiple of beta. Defaults to 64.
	RGridSize int
}

func (o *OptimizeOptions) defaults() {
	if o.KLsh <= 0 {
		o.KLsh = 16
	}
	if o.WeightFNR <= 0 {
		o.WeightFNR = 0.5
	}
	if o.WeightFPR <= 0 {
		o.WeightFPR = 0.5
	}
	if o.RGridSize <= 0 {
		o.RGridSize = 64
	}
}

// Optimize solves the multi-objective LSH setting problem of Eq. (6): it
// searches {r, k, l} with k·l ≤ K_lsh minimizing the simple-additive-weighted
// sum of the worst-case FNR (honest error = α) and worst-case FPR (spoof
// distance = β). It returns the chosen parameters and their worst-case rates.
func Optimize(alpha, beta float64, opts OptimizeOptions) (Params, float64, float64, error) {
	if alpha <= 0 || beta <= alpha {
		return Params{}, 0, 0, fmt.Errorf("alpha %v beta %v: %w", alpha, beta, ErrBadBounds)
	}
	opts.defaults()
	if opts.KLsh < 1 {
		return Params{}, 0, 0, ErrBadBudget
	}

	bestScore := math.Inf(1)
	var best Params
	// r is searched from around α up to several β; the useful regime has
	// p(α) high and p(β) low, which requires r between the two scales.
	rLo, rHi := alpha/2, beta*8
	for i := 0; i < opts.RGridSize; i++ {
		frac := float64(i) / float64(opts.RGridSize-1)
		r := rLo * math.Pow(rHi/rLo, frac) // log-spaced grid
		for k := 1; k <= opts.KLsh; k++ {
			for l := 1; k*l <= opts.KLsh; l++ {
				p := Params{R: r, K: k, L: l}
				score := opts.WeightFNR*FNRAtWorstCase(alpha, p) +
					opts.WeightFPR*FPRAtWorstCase(beta, p)
				if score < bestScore {
					bestScore = score
					best = p
				}
			}
		}
	}
	return best, FNRAtWorstCase(alpha, best), FPRAtWorstCase(beta, best), nil
}
