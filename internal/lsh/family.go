package lsh

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

// Family is a concrete p-stable LSH family over vectors of a fixed
// dimension. A family is a pure function of (dim, params, seed): the manager
// distributes (params, seed) to pool workers so both sides hash with
// identical projections (Sec. V-C, "distributes them to pool workers for
// producing LSH-based commitment").
type Family struct {
	dim    int
	params Params
	seed   int64
	// projections[g][f] is the Gaussian vector a for group g, function f;
	// offsets[g][f] is the uniform shift b in [0, r).
	projections [][]tensor.Vector
	offsets     [][]float64
}

// Digest is the LSH fingerprint of a vector: one 8-byte hash per group,
// where each group hash condenses its k bucket indices. Two digests match if
// any group hash agrees.
type Digest []uint64

// Size returns the digest's wire size in bytes.
func (d Digest) Size() int { return 8 * len(d) }

// Encode serializes the digest.
func (d Digest) Encode() []byte {
	return d.AppendEncode(make([]byte, 0, d.Size()))
}

// AppendEncode appends the Encode representation to dst and returns the
// extended slice, so wire paths can serialize into a reused buffer.
func (d Digest) AppendEncode(dst []byte) []byte {
	for _, v := range d {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// DecodeDigest parses a digest previously produced by Encode.
func DecodeDigest(buf []byte) (Digest, error) {
	if len(buf)%8 != 0 {
		return nil, fmt.Errorf("lsh: digest length %d not a multiple of 8", len(buf))
	}
	d := make(Digest, len(buf)/8)
	for i := range d {
		d[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return d, nil
}

// NewFamily constructs the family for vectors of length dim.
func NewFamily(dim int, params Params, seed int64) (*Family, error) {
	if dim < 1 {
		return nil, fmt.Errorf("lsh: dimension %d", dim)
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	proj := make([][]tensor.Vector, params.L)
	offs := make([][]float64, params.L)
	for g := 0; g < params.L; g++ {
		proj[g] = make([]tensor.Vector, params.K)
		offs[g] = make([]float64, params.K)
		for f := 0; f < params.K; f++ {
			proj[g][f] = rng.NormalVector(dim, 0, 1)
			offs[g][f] = rng.Uniform(0, params.R)
		}
	}
	return &Family{dim: dim, params: params, seed: seed, projections: proj, offsets: offs}, nil
}

// Dim returns the vector dimension the family hashes.
func (f *Family) Dim() int { return f.dim }

// Params returns the family's {r, k, l}.
func (f *Family) Params() Params { return f.params }

// Seed returns the seed the family was derived from.
func (f *Family) Seed() int64 { return f.seed }

// Hash computes the digest of x: for each group, the k bucket indices
// ⌊(a·x+b)/r⌋ are folded through SHA-256 into one 8-byte group hash.
func (f *Family) Hash(x tensor.Vector) (Digest, error) {
	return f.HashPool(nil, x)
}

// HashPool is Hash with the l groups chunked across the pool. Each group's
// 8-byte hash is a pure function of (x, that group's projections) written to
// its own digest slot, so the result is bit-identical to the serial Hash for
// any worker count. A nil pool runs serially.
func (f *Family) HashPool(p *parallel.Pool, x tensor.Vector) (Digest, error) {
	if len(x) != f.dim {
		return nil, fmt.Errorf("lsh: input %d, want %d: %w", len(x), f.dim, tensor.ErrShapeMismatch)
	}
	d := make(Digest, f.params.L)
	if p.Workers() <= 1 {
		// Serial fast path shares one bucket buffer across groups.
		buf := make([]byte, 8*f.params.K)
		if err := f.hashGroups(d, buf, x, 0, f.params.L); err != nil {
			return nil, err
		}
		return d, nil
	}
	errs := make([]error, parallel.NumChunks(f.params.L, 1))
	p.ForChunks(f.params.L, 1, func(c, lo, hi int) {
		buf := make([]byte, 8*f.params.K)
		errs[c] = f.hashGroups(d, buf, x, lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// hashGroups fills digest slots lo..hi. Every group writes only its own
// slot, and each group hash is a pure function of x and the family, so any
// partition of the groups yields identical digests.
func (f *Family) hashGroups(d Digest, buf []byte, x tensor.Vector, lo, hi int) error {
	for g := lo; g < hi; g++ {
		for fn := 0; fn < f.params.K; fn++ {
			dot, err := f.projections[g][fn].Dot(x)
			if err != nil {
				return err
			}
			bucket := int64(math.Floor((dot + f.offsets[g][fn]) / f.params.R))
			binary.LittleEndian.PutUint64(buf[8*fn:], uint64(bucket))
		}
		sum := sha256.Sum256(buf)
		d[g] = binary.LittleEndian.Uint64(sum[:8])
	}
	return nil
}

// Match reports whether two digests agree in at least one group — the OR
// over l groups of the AND over k functions.
func Match(a, b Digest) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == b[i] {
			return true
		}
	}
	return false
}
