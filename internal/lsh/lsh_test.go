package lsh

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"rpol/internal/tensor"
)

func TestCollisionProbEndpoints(t *testing.T) {
	if p := CollisionProb(0, 1); p != 1 {
		t.Errorf("p(0) = %v, want 1", p)
	}
	if p := CollisionProb(1, 0); p != 0 {
		t.Errorf("p with r=0 = %v, want 0", p)
	}
	// Far points almost never collide.
	if p := CollisionProb(1000, 1); p > 0.01 {
		t.Errorf("p(1000,1) = %v, want ≈ 0", p)
	}
	// Near points almost always collide.
	if p := CollisionProb(0.001, 1); p < 0.99 {
		t.Errorf("p(0.001,1) = %v, want ≈ 1", p)
	}
}

func TestCollisionProbMonotoneInDistance(t *testing.T) {
	prev := 1.0
	for c := 0.1; c < 20; c += 0.1 {
		p := CollisionProb(c, 2)
		if p > prev+1e-12 {
			t.Fatalf("p not monotone at c=%v: %v > %v", c, p, prev)
		}
		prev = p
	}
}

func TestMatchProbShape(t *testing.T) {
	p := Params{R: 1, K: 4, L: 4}
	// More distance ⇒ lower match probability.
	if MatchProb(0.1, p) <= MatchProb(5, p) {
		t.Error("match prob must decrease with distance")
	}
	// Larger k sharpens (lowers) match prob at fixed distance.
	if MatchProb(1, Params{R: 1, K: 8, L: 4}) >= MatchProb(1, Params{R: 1, K: 1, L: 4}) {
		t.Error("larger k must lower match prob")
	}
	// Larger l raises match prob.
	if MatchProb(1, Params{R: 1, K: 4, L: 8}) <= MatchProb(1, Params{R: 1, K: 4, L: 1}) {
		t.Error("larger l must raise match prob")
	}
}

func TestMatchProbBounds(t *testing.T) {
	f := func(cRaw, rRaw float64, kRaw, lRaw uint8) bool {
		c := math.Abs(cRaw)
		r := math.Abs(rRaw) + 0.01
		if math.IsNaN(c) || math.IsInf(c, 0) || c > 1e100 || r > 1e100 {
			return true
		}
		p := Params{R: r, K: int(kRaw%8) + 1, L: int(lRaw%8) + 1}
		m := MatchProb(c, p)
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimizeSeparatesAlphaBeta(t *testing.T) {
	// With β = 5α and budget 16, the paper targets Pr(α) ≈ 95 %, Pr(β) ≈ 5 %.
	alpha := 0.2
	beta := 1.0
	params, fnr, fpr, err := Optimize(alpha, beta, OptimizeOptions{KLsh: 16})
	if err != nil {
		t.Fatal(err)
	}
	if params.K*params.L > 16 {
		t.Errorf("budget violated: k·l = %d", params.K*params.L)
	}
	if fnr > 0.10 {
		t.Errorf("worst-case FNR = %v, want ≤ 0.10", fnr)
	}
	if fpr > 0.10 {
		t.Errorf("worst-case FPR = %v, want ≤ 0.10", fpr)
	}
	if got := MatchProb(alpha, params); got < 0.9 {
		t.Errorf("Pr(α) = %v, want ≥ 0.9", got)
	}
	if got := MatchProb(beta, params); got > 0.1 {
		t.Errorf("Pr(β) = %v, want ≤ 0.1", got)
	}
}

func TestOptimizeValidation(t *testing.T) {
	if _, _, _, err := Optimize(0, 1, OptimizeOptions{}); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
	if _, _, _, err := Optimize(1, 0.5, OptimizeOptions{}); !errors.Is(err, ErrBadBounds) {
		t.Errorf("err = %v, want ErrBadBounds", err)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params{R: 1, K: 2, L: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
	for _, bad := range []Params{{R: 0, K: 1, L: 1}, {R: 1, K: 0, L: 1}, {R: 1, K: 1, L: 0}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", bad)
		}
	}
}

func TestFamilyDeterministic(t *testing.T) {
	params := Params{R: 4, K: 4, L: 4}
	a, err := NewFamily(16, params, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFamily(16, params, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.NewRNG(1).NormalVector(16, 0, 1)
	da, err := a.Hash(x)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Hash(x)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(da, db) {
		t.Error("same family must produce matching digests")
	}
	for i := range da {
		if da[i] != db[i] {
			t.Error("same family must produce identical digests")
		}
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := NewFamily(0, Params{R: 1, K: 1, L: 1}, 0); err == nil {
		t.Error("want error for zero dim")
	}
	if _, err := NewFamily(4, Params{R: 0, K: 1, L: 1}, 0); err == nil {
		t.Error("want error for bad params")
	}
	fam, err := NewFamily(4, Params{R: 1, K: 1, L: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fam.Hash(tensor.NewVector(3)); !errors.Is(err, tensor.ErrShapeMismatch) {
		t.Errorf("Hash err = %v", err)
	}
}

func TestFuzzyMatchingBehaviour(t *testing.T) {
	// Nearby vectors (distance ≈ α) should usually match; distant vectors
	// (distance ≈ β) should usually not. This is the core robustness
	// property the verification relies on.
	const dim = 64
	alpha, beta := 0.1, 1.0
	params, _, _, err := Optimize(alpha, beta, OptimizeOptions{KLsh: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(99)
	const trials = 200
	nearMatches, farMatches := 0, 0
	for i := 0; i < trials; i++ {
		fam, err := NewFamily(dim, params, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		base := rng.NormalVector(dim, 0, 1)
		perturb := func(dist float64) tensor.Vector {
			dir := rng.NormalVector(dim, 0, 1)
			dir.Scale(dist / dir.Norm2())
			out, err := base.Add(dir)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		d0, err := fam.Hash(base)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := fam.Hash(perturb(alpha))
		if err != nil {
			t.Fatal(err)
		}
		df, err := fam.Hash(perturb(beta))
		if err != nil {
			t.Fatal(err)
		}
		if Match(d0, dn) {
			nearMatches++
		}
		if Match(d0, df) {
			farMatches++
		}
	}
	nearRate := float64(nearMatches) / trials
	farRate := float64(farMatches) / trials
	if nearRate < 0.85 {
		t.Errorf("near match rate = %v, want ≥ 0.85", nearRate)
	}
	if farRate > 0.15 {
		t.Errorf("far match rate = %v, want ≤ 0.15", farRate)
	}
}

func TestDigestEncodeDecode(t *testing.T) {
	d := Digest{1, 2, 1 << 60}
	if d.Size() != 24 {
		t.Errorf("Size = %d", d.Size())
	}
	got, err := DecodeDigest(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(d) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range d {
		if got[i] != d[i] {
			t.Errorf("round trip mismatch at %d", i)
		}
	}
	if _, err := DecodeDigest([]byte{1, 2, 3}); err == nil {
		t.Error("want error for ragged digest")
	}
}

func TestMatchEdgeCases(t *testing.T) {
	if Match(Digest{1}, Digest{1, 2}) {
		t.Error("different lengths must not match")
	}
	if Match(Digest{1, 2}, Digest{3, 4}) {
		t.Error("disjoint digests must not match")
	}
	if !Match(Digest{1, 9}, Digest{7, 9}) {
		t.Error("one agreeing group suffices")
	}
}
