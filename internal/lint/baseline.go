package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the checked-in debt ledger (.rpolvet-baseline.json): a budget
// of known findings a new invariant is allowed to coexist with while the
// burn-down happens. The budget only ratchets downward — a finding beyond an
// entry's count fails the run as usual, and an entry whose findings have
// been fixed goes stale and also fails the run until the baseline is
// re-written smaller (rpolvet -writebaseline). Debt can therefore land,
// shrink, and disappear, but never silently grow or linger.
type Baseline struct {
	Budget []BaselineEntry `json:"budget"`
}

// BaselineEntry waives up to Count findings with the given analyzer, file
// (module-root-relative, slash-separated), and message. Keying on the full
// message, not the line number, keeps entries stable across unrelated edits
// to the same file.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	seen := map[string]bool{}
	for _, e := range b.Budget {
		if e.Analyzer == "" || e.File == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("lint: baseline %s: entry %+v needs analyzer, file, message and count >= 1", path, e)
		}
		if seen[e.key()] {
			return nil, fmt.Errorf("lint: baseline %s: duplicate entry for %s %s", path, e.Analyzer, e.File)
		}
		seen[e.key()] = true
	}
	return &b, nil
}

// Apply splits findings against the budget. fresh are findings not covered
// by any entry (they fail the run); waived are findings absorbed by the
// budget (reported for auditing, like suppressions); stale are entries whose
// budget exceeds the findings that actually remain — the downward ratchet:
// a stale entry fails the run until the baseline is re-written smaller.
// root is the module root used to relativize finding paths to entry paths.
func (b *Baseline) Apply(findings []Diagnostic, root string) (fresh, waived []Diagnostic, stale []BaselineEntry) {
	remaining := map[string]int{}
	for _, e := range b.Budget {
		remaining[e.key()] = e.Count
	}
	for _, d := range findings {
		k := BaselineEntry{Analyzer: d.Analyzer, File: baselinePath(d.File, root), Message: d.Message}.key()
		if remaining[k] > 0 {
			remaining[k]--
			waived = append(waived, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	for _, e := range b.Budget {
		if left := remaining[e.key()]; left > 0 {
			s := e
			s.Count = left
			stale = append(stale, s)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i].key() < stale[j].key() })
	return fresh, waived, stale
}

// NewBaseline builds the smallest baseline covering the given findings,
// aggregated and deterministically ordered — the -writebaseline output.
func NewBaseline(findings []Diagnostic, root string) *Baseline {
	counts := map[BaselineEntry]int{}
	for _, d := range findings {
		counts[BaselineEntry{Analyzer: d.Analyzer, File: baselinePath(d.File, root), Message: d.Message}]++
	}
	b := &Baseline{Budget: []BaselineEntry{}}
	for e, n := range counts {
		e.Count = n
		b.Budget = append(b.Budget, e)
	}
	sort.Slice(b.Budget, func(i, j int) bool { return b.Budget[i].key() < b.Budget[j].key() })
	return b
}

// WriteBaseline writes the baseline as stable, indented JSON.
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselinePath normalizes a finding's file to the module-root-relative,
// slash-separated form baseline entries use.
func baselinePath(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}
