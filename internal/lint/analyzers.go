package lint

import "strings"

// All returns the project's analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NoWallClock,
		NoRandGlobal,
		MapOrder,
		FloatEq,
		NilSafeObs,
		LockSend,
		DurableWrite,
		GoroutineLeak,
		SeedPurity,
	}
}

// pathIn builds an Applies predicate matching exactly the given import
// paths.
func pathIn(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}

// pathNotIn builds an Applies predicate matching every package except the
// given import paths (and their subpackages).
func pathNotIn(paths ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return false
			}
		}
		return true
	}
}
