package lint

import (
	"strings"
)

// ignoreIndex records where rpolvet:ignore directives sit in a package's
// files: (file, line, analyzer) -> reason. A directive suppresses matching
// findings on its own line (trailing comment) and on the following line
// (standalone comment above the offending statement).
type ignoreIndex struct {
	byKey map[ignoreKey]string
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// match reports whether d is waived by a directive, returning the reason.
func (ix ignoreIndex) match(d Diagnostic) (string, bool) {
	if r, ok := ix.byKey[ignoreKey{d.File, d.Line, d.Analyzer}]; ok {
		return r, true
	}
	if r, ok := ix.byKey[ignoreKey{d.File, d.Line - 1, d.Analyzer}]; ok {
		return r, true
	}
	return "", false
}

// directiveIndex scans a package's comments for rpolvet:ignore directives.
// Malformed directives (no analyzer, unknown analyzer, missing reason) are
// returned as findings so stale or typo'd waivers cannot silently disable a
// check.
func directiveIndex(pkg *Package, known map[string]bool) (ignoreIndex, []Diagnostic) {
	ix := ignoreIndex{byKey: make(map[ignoreKey]string)}
	var bad []Diagnostic
	report := func(pos int, file string, line int, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: "rpolvet",
			File:     file,
			Line:     line,
			Col:      pos,
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, reason, problem, isDirective := parseIgnoreDirective(c.Text, known)
				if !isDirective {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				if problem != "" {
					report(position.Column, position.Filename, position.Line, problem)
					continue
				}
				ix.byKey[ignoreKey{position.Filename, position.Line, analyzer}] = reason
			}
		}
	}
	return ix, bad
}

// parseIgnoreDirective classifies one raw comment (including its // or
// /* markers) as an rpolvet:ignore directive. isDirective reports whether
// the comment reads like a waiver at all; for directives, problem is ""
// with analyzer and reason populated when the waiver is valid, and a
// finding message otherwise. Everything that looks like a directive but
// does not parse is a problem, never a silent pass — a typo'd waiver that
// quietly disabled nothing would be strictly worse than no waiver.
func parseIgnoreDirective(text string, known map[string]bool) (analyzer, reason, problem string, isDirective bool) {
	if !strings.HasPrefix(text, "//") {
		// A block comment has no single anchor line, so the suppression's
		// scope would be ambiguous; reject rather than silently skipping
		// what reads like a waiver.
		if strings.Contains(text, "rpolvet:ignore") {
			return "", "", "rpolvet:ignore must be a // line comment, not a /* */ block comment", true
		}
		return "", "", "", false
	}
	trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	rest, ok := strings.CutPrefix(trimmed, "rpolvet:ignore")
	if !ok {
		return "", "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// "rpolvet:ignorenowallclock ..." must not parse as a valid waiver
		// for nowallclock.
		return "", "", "malformed rpolvet:ignore directive: put a space between rpolvet:ignore and the analyzer name", true
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "rpolvet:ignore needs an analyzer name and a reason", true
	}
	analyzer = fields[0]
	if !known[analyzer] {
		return "", "", "rpolvet:ignore names unknown analyzer " + analyzer, true
	}
	if len(fields) < 2 {
		return "", "", "rpolvet:ignore " + analyzer + " needs a reason", true
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), analyzer))
	return analyzer, reason, "", true
}
