package lint

import (
	"strings"
)

// ignoreIndex records where rpolvet:ignore directives sit in a package's
// files: (file, line, analyzer) -> reason. A directive suppresses matching
// findings on its own line (trailing comment) and on the following line
// (standalone comment above the offending statement).
type ignoreIndex struct {
	byKey map[ignoreKey]string
}

type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// match reports whether d is waived by a directive, returning the reason.
func (ix ignoreIndex) match(d Diagnostic) (string, bool) {
	if r, ok := ix.byKey[ignoreKey{d.File, d.Line, d.Analyzer}]; ok {
		return r, true
	}
	if r, ok := ix.byKey[ignoreKey{d.File, d.Line - 1, d.Analyzer}]; ok {
		return r, true
	}
	return "", false
}

// directiveIndex scans a package's comments for rpolvet:ignore directives.
// Malformed directives (no analyzer, unknown analyzer, missing reason) are
// returned as findings so stale or typo'd waivers cannot silently disable a
// check.
func directiveIndex(pkg *Package, known map[string]bool) (ignoreIndex, []Diagnostic) {
	ix := ignoreIndex{byKey: make(map[ignoreKey]string)}
	var bad []Diagnostic
	report := func(pos int, file string, line int, msg string) {
		bad = append(bad, Diagnostic{
			Analyzer: "rpolvet",
			File:     file,
			Line:     line,
			Col:      pos,
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "rpolvet:ignore")
				if !ok {
					continue
				}
				position := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					report(position.Column, position.Filename, position.Line,
						"rpolvet:ignore needs an analyzer name and a reason")
					continue
				}
				analyzer := fields[0]
				if !known[analyzer] {
					report(position.Column, position.Filename, position.Line,
						"rpolvet:ignore names unknown analyzer "+analyzer)
					continue
				}
				if len(fields) < 2 {
					report(position.Column, position.Filename, position.Line,
						"rpolvet:ignore "+analyzer+" needs a reason")
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
				ix.byKey[ignoreKey{position.Filename, position.Line, analyzer}] = reason
			}
		}
	}
	return ix, bad
}
