package lint

import "go/ast"

// globalRandFuncs lists, per rand package, the top-level functions that
// draw from the shared process-wide source. Constructors (New, NewSource,
// NewPCG, NewChaCha8, NewZipf) are exactly the approved escape hatch — they
// build the injected *rand.Rand this codebase seeds explicitly — so they
// are not flagged.
var globalRandFuncs = map[string]map[string]bool{
	"math/rand": {
		"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Perm": true, "Shuffle": true, "Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
		"Perm": true, "Shuffle": true, "N": true,
	},
}

// NoRandGlobal enforces replayability of every randomized decision: shard
// assignment, checkpoint sampling, adversary behaviour, LSH family draws,
// and weight initialization must all flow from an explicitly seeded
// generator (the pattern internal/tensor's RNG establishes), never from the
// package-level math/rand state, which is process-global, shared across
// goroutines, and auto-seeded since Go 1.20.
var NoRandGlobal = &Analyzer{
	Name: "norandglobal",
	Doc:  "randomness must come from an injected, seeded *rand.Rand (see internal/tensor/rand.go), not package-level math/rand",
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgPath, name, ok := pkgFunc(pass.Pkg.TypesInfo, sel)
				if !ok {
					return true
				}
				if funcs, ok := globalRandFuncs[pkgPath]; ok && funcs[name] {
					pass.Reportf(sel.Pos(), "%s.%s draws from the global rand source, which is unseeded shared state; draw from an injected *rand.Rand (see internal/tensor/rand.go)", pkgPath, name)
				}
				return true
			})
		}
	},
}
