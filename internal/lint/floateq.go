package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point operands in the numeric
// packages (nn, tensor, lsh, stats). Accumulated rounding makes exact
// equality between computed floats brittle — two mathematically equal
// reductions can differ in the last ulp — so comparisons belong behind a
// tolerance (tensor.Vector.Equal, or math.Abs(a-b) <= eps as
// internal/stats does). The one idiom left alone is comparison against an
// exact constant zero: IEEE 754 represents zero exactly, and `if sigma == 0`
// division guards and unset-default sentinels are deliberate.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no exact float ==/!= in numeric packages; compare with a tolerance (zero-sentinel guards excepted)",
	Applies: pathIn(
		"rpol/internal/nn",
		"rpol/internal/tensor",
		"rpol/internal/lsh",
		"rpol/internal/stats",
	),
	Run: func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if !isFloat(info.TypeOf(be.X)) && !isFloat(info.TypeOf(be.Y)) {
					return true
				}
				// Constant-folded comparisons and exact-zero sentinels are
				// well-defined; everything else is a rounding hazard.
				xc, yc := constOf(info, be.X), constOf(info, be.Y)
				if xc != nil && yc != nil {
					return true
				}
				if isZeroConst(xc) || isZeroConst(yc) {
					return true
				}
				pass.Reportf(be.OpPos, "exact floating-point %s comparison is brittle under rounding; compare with a tolerance (e.g. tensor.Vector.Equal or math.Abs(a-b) <= eps)", be.Op)
				return true
			})
		}
	},
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func constOf(info *types.Info, e ast.Expr) constant.Value {
	if tv, ok := info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isZeroConst(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
