package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixRoundTrip pins the acceptance criterion for the fix engine:
// applying the suggested fixes to the fixable fixture must produce, byte
// for byte, the fixed fixture — and the fixed fixture itself must scan
// clean, so the engine never rewrites code into a state the analyzer still
// rejects.
func TestFixRoundTrip(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "durablewrite", "fixable"), "rpol/internal/journal")
	if err != nil {
		t.Fatal(err)
	}
	findings, suppressed := Run([]*Package{pkg}, []*Analyzer{DurableWrite})
	if len(suppressed) != 0 {
		t.Fatalf("unexpected suppressions: %v", suppressed)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 os.WriteFile findings: %v", len(findings), findings)
	}
	for _, d := range findings {
		if len(d.Fixes) != 1 {
			t.Fatalf("finding %s carries %d fixes, want 1", d, len(d.Fixes))
		}
	}

	patched, err := ApplyFixes(findings, os.ReadFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(patched) != 1 {
		t.Fatalf("fixes touched %d files, want 1: %v", len(patched), patched)
	}
	var got []byte
	for f, content := range patched {
		if filepath.Base(f) != "fixable.go" {
			t.Fatalf("fix touched unexpected file %s", f)
		}
		got = content
	}
	want, err := os.ReadFile(filepath.Join("testdata", "durablewrite", "fixed", "fixed.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("fix round-trip mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	fixedPkg, err := LoadDir(filepath.Join("testdata", "durablewrite", "fixed"), "rpol/internal/journal")
	if err != nil {
		t.Fatal(err)
	}
	fixedFindings, _ := Run([]*Package{fixedPkg}, []*Analyzer{DurableWrite})
	for _, d := range fixedFindings {
		t.Errorf("fixed fixture still flagged: %s", d)
	}
}

func fixDiag(edits ...TextEdit) Diagnostic {
	return Diagnostic{
		Analyzer: "durablewrite",
		File:     "x.go",
		Message:  "m",
		Fixes:    []SuggestedFix{{Message: "f", Edits: edits}},
	}
}

// TestApplyFixesDedup checks that the identical edit carried by two
// findings (both WriteFile fixes in one file include the same import
// rewrite) is applied once.
func TestApplyFixesDedup(t *testing.T) {
	src := []byte("aaa bbb ccc")
	read := func(string) ([]byte, error) { return src, nil }
	shared := TextEdit{File: "x.go", Start: 4, End: 7, New: "BBB"}
	patched, err := ApplyFixes([]Diagnostic{
		fixDiag(shared, TextEdit{File: "x.go", Start: 0, End: 3, New: "AAA"}),
		fixDiag(shared, TextEdit{File: "x.go", Start: 8, End: 11, New: "CCC"}),
	}, read)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(patched["x.go"]); got != "AAA BBB CCC" {
		t.Errorf("patched = %q, want %q", got, "AAA BBB CCC")
	}
}

// TestApplyFixesConflict checks that genuinely overlapping rewrites are an
// error, not a silent merge.
func TestApplyFixesConflict(t *testing.T) {
	read := func(string) ([]byte, error) { return []byte("aaaaaa"), nil }
	_, err := ApplyFixes([]Diagnostic{
		fixDiag(TextEdit{File: "x.go", Start: 0, End: 4, New: "x"}),
		fixDiag(TextEdit{File: "x.go", Start: 2, End: 6, New: "y"}),
	}, read)
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("want overlap error, got %v", err)
	}
}

func TestApplyFixesOutOfRange(t *testing.T) {
	read := func(string) ([]byte, error) { return []byte("short"), nil }
	_, err := ApplyFixes([]Diagnostic{
		fixDiag(TextEdit{File: "x.go", Start: 2, End: 99, New: "x"}),
	}, read)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestDiff(t *testing.T) {
	oldSrc := []byte("a\nb\nc\n")
	newSrc := []byte("a\nB\nc\n")
	d := Diff("x.go", oldSrc, newSrc)
	for _, want := range []string{"--- x.go", "+++ x.go (fixed)", "-b", "+B"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "-a") || strings.Contains(d, "+c") {
		t.Errorf("diff includes unchanged lines:\n%s", d)
	}
	if Diff("x.go", oldSrc, oldSrc) != "" {
		t.Error("identical contents produced a non-empty diff")
	}
}
