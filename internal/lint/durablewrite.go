package lint

import (
	"go/ast"
	"strconv"
)

// DurableWrite enforces the PR 5 invariant: every byte the protocol
// persists — journal records, checkpoints, blockchain state, trace files —
// must travel through internal/fsio's checksummed atomic write path
// (WriteFileAtomic, AppendFile frames, the FS interface). A raw os.WriteFile
// in these packages is exactly the bug class PR 5 retired: a crash mid-write
// leaves a torn file that replays as silent corruption instead of being
// detected and discarded, and a non-atomic rename-free write can destroy the
// previous good version too.
//
// The analyzer flags, inside the durable packages only:
//
//   - os.WriteFile / os.Create / os.CreateTemp / os.OpenFile / os.Rename
//     (hand-rolled persistence or a hand-rolled atomic dance);
//   - write-side *os.File methods (Write, WriteString, WriteAt, Truncate,
//     Sync) — holding a raw file handle means the checksummed framing was
//     bypassed;
//   - (*bufio.Writer).Flush — a buffered flush to a file commits bytes
//     without a frame checksum or an atomic rename.
//
// os.WriteFile findings carry a suggested fix (rpolvet -fix) rewriting the
// call to fsio.WriteFileAtomic, including the import when os is otherwise
// unused in the file.
var DurableWrite = &Analyzer{
	Name: "durablewrite",
	Doc:  "persistent writes in journal/checkpoint/blockchain/tracefile must route through fsio's checksummed atomic writes, never raw os file IO",
	Applies: pathIn(
		"rpol/internal/journal",
		"rpol/internal/checkpoint",
		"rpol/internal/blockchain",
		"rpol/internal/tracefile",
	),
	Run: runDurableWrite,
}

// durableOSFuncs are the os entry points that create or mutate files.
var durableOSFuncs = map[string]bool{
	"WriteFile": true, "Create": true, "CreateTemp": true,
	"OpenFile": true, "Rename": true,
}

// durableFileMethods are the *os.File methods that commit bytes.
var durableFileMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteAt": true,
	"Truncate": true, "Sync": true,
}

func runDurableWrite(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgPath, name, isPkg := pkgFunc(info, sel); isPkg {
				if pkgPath == "os" && durableOSFuncs[name] {
					if name == "WriteFile" && len(call.Args) == 3 {
						fix := writeFileAtomicFix(pass, file, call, sel)
						pass.ReportfFix(sel.Pos(), fix, "os.WriteFile bypasses fsio's checksummed atomic write path: a crash mid-write leaves a torn, undetectable file (PR 5 invariant); use fsio.WriteFileAtomic")
						return true
					}
					pass.Reportf(sel.Pos(), "os.%s opens a raw persistence path around fsio's checksummed atomic writes (PR 5 invariant); route durable bytes through fsio.WriteFileAtomic or the fsio.FS interface", name)
				}
				return true
			}
			recvT := info.TypeOf(sel.X)
			if recvT == nil {
				return true
			}
			pkg, typeName := namedTypeOf(recvT)
			switch {
			case pkg == "os" && typeName == "File" && durableFileMethods[sel.Sel.Name]:
				pass.Reportf(sel.Pos(), "os.File.%s writes through a raw file handle, bypassing fsio's checksummed frames (PR 5 invariant)", sel.Sel.Name)
			case pkg == "bufio" && typeName == "Writer" && sel.Sel.Name == "Flush":
				pass.Reportf(sel.Pos(), "bufio.Writer.Flush commits buffered bytes without a frame checksum or atomic rename (PR 5 invariant); encode through fsio frames and write atomically")
			}
			return true
		})
	}
}

// writeFileAtomicFix builds the textual rewrite from
// os.WriteFile(path, data, perm) to fsio.WriteFileAtomic(path, data). When
// the flagged calls are the file's only uses of the os package, the import
// is rewritten (or dropped, when fsio is already imported) too.
func writeFileAtomicFix(pass *Pass, f *ast.File, call *ast.CallExpr, sel *ast.SelectorExpr) *SuggestedFix {
	file, lo, hi := pass.Offsets(sel.Pos(), sel.End())
	edits := []TextEdit{{File: file, Start: lo, End: hi, New: "fsio.WriteFileAtomic"}}
	// Drop the permission argument: WriteFileAtomic owns the mode.
	_, argEnd, closePos := pass.Offsets(call.Args[1].End(), call.Rparen)
	edits = append(edits, TextEdit{File: file, Start: argEnd, End: closePos, New: ""})
	edits = append(edits, importRewriteEdits(pass, f)...)
	return &SuggestedFix{
		Message: "replace os.WriteFile with fsio.WriteFileAtomic",
		Edits:   edits,
	}
}

// importRewriteEdits turns the file's `"os"` import into
// `"rpol/internal/fsio"` when every os reference in the file is an
// os.WriteFile call being fixed — otherwise the import must stay and only
// the calls are rewritten. When fsio is already imported the os import line
// is deleted instead.
func importRewriteEdits(pass *Pass, f *ast.File) []TextEdit {
	info := pass.Pkg.TypesInfo
	osUses, fixedUses := 0, 0
	hasFsio := false
	var osSpec *ast.ImportSpec
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "os":
			osSpec = spec
		case "rpol/internal/fsio":
			hasFsio = true
		}
	}
	if osSpec == nil {
		return nil
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkgPath, name, isPkg := pkgFunc(info, sel); isPkg && pkgPath == "os" {
			osUses++
			if name == "WriteFile" {
				fixedUses++
			}
		}
		return true
	})
	if osUses == 0 || osUses != fixedUses {
		return nil
	}
	file, lo, hi := pass.Offsets(osSpec.Path.Pos(), osSpec.Path.End())
	if !hasFsio {
		return []TextEdit{{File: file, Start: lo, End: hi, New: `"rpol/internal/fsio"`}}
	}
	// fsio already imported: delete the whole os import line.
	pos := pass.Pkg.Fset.Position(osSpec.Pos())
	lineStart := pos.Offset - (pos.Column - 1)
	return []TextEdit{{File: file, Start: lineStart, End: hi + 1, New: ""}}
}
