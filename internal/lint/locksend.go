package lint

import (
	"go/ast"
	"go/types"
)

// LockSend retires the PR 4 panic class: a channel send (or any other
// indefinitely blocking operation) executed while a sync.Mutex or
// sync.RWMutex is held. The original bug was Bus.Send enqueueing into an
// endpoint inbox under the bus lock with a plain `ch <- msg`; a concurrent
// Close closed the inbox and panicked the sender, and any full inbox would
// have deadlocked every other bus user behind the lock. The surviving,
// correct shape holds the lock but makes the enqueue non-blocking
// (select with a default clause), which this analyzer deliberately admits.
//
// The analyzer walks each function body with a lock-state machine: Lock and
// RLock calls on sync.Mutex/RWMutex-typed expressions push that lock,
// Unlock/RUnlock pop it, and `defer mu.Unlock()` keeps it held through the
// rest of the body (which is exactly what the runtime does). Branch bodies
// are analyzed with a copy of the state, so `if closed { mu.Unlock();
// return }` early exits do not leak state. While any lock is held, the
// following are findings:
//
//   - a blocking channel send: a bare SendStmt, or a send clause of a
//     select with no default (a select with default is non-blocking and
//     passes);
//   - a call into the blocking surface of net or os: Dial*/Listen* and
//     Conn/Listener Read/Write/Accept methods, file creation/IO functions
//     and *os.File write methods;
//   - an event publish: (*obs.Events).Publish, which takes the event-log
//     lock and must never nest under a transport or protocol lock;
//   - a call to a same-package function whose body performs one of the
//     above (one level of propagation, so helpers like a publishFault
//     cannot hide the operation from the caller's critical section).
//
// Function literals run elsewhere: goroutine bodies and plain closures are
// analyzed as their own scopes with no inherited locks. Deferred closures
// and immediately-invoked closures inherit the state at their site, because
// they execute on this goroutine while the locks are (still) held.
var LockSend = &Analyzer{
	Name: "locksend",
	Doc:  "no blocking channel send, net/os blocking call, or event publish while a sync.Mutex/RWMutex is held (PR 4 Bus.Send panic class)",
	Run:  runLockSend,
}

// lockBlockingNetFuncs are package-level net functions that block on the
// network.
var lockBlockingNetFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true,
	"DialUnix": true, "DialIP": true, "Listen": true, "ListenPacket": true,
	"ListenTCP": true, "ListenUDP": true, "ListenUnix": true,
}

// lockBlockingOSFuncs are package-level os functions that touch the
// filesystem.
var lockBlockingOSFuncs = map[string]bool{
	"WriteFile": true, "ReadFile": true, "Create": true, "CreateTemp": true,
	"Open": true, "OpenFile": true, "Rename": true, "Remove": true,
	"RemoveAll": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Truncate": true,
}

// lockBlockingNetMethods block on the peer when called on a net.Conn,
// net.Listener, or any other net type. Close is deliberately absent: it is
// non-blocking in practice and routinely (correctly) called under the lock
// that guards the connection table.
var lockBlockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "ReadFrom": true,
	"WriteTo": true, "ReadFromUDP": true, "WriteToUDP": true,
}

// lockBlockingFileMethods are *os.File methods that perform IO.
var lockBlockingFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"WriteString": true, "Sync": true, "Truncate": true, "ReadDir": true,
}

func runLockSend(pass *Pass) {
	w := &lockWalker{pass: pass, info: pass.Pkg.TypesInfo}
	w.indexFuncs()
	w.propagate()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				w.walkStmts(fd.Body.List, lockState{})
			}
		}
	}
}

// lockState is the set of held locks, keyed by the printed source
// expression of the lock receiver ("b.mu", "s.writeMu", ...).
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s lockState) any() (string, bool) {
	// Deterministic pick for stable messages: the lexically smallest key.
	best := ""
	for k := range s {
		if best == "" || k < best {
			best = k
		}
	}
	return best, best != ""
}

type lockWalker struct {
	pass *Pass
	info *types.Info

	// decls maps function/method objects declared in this package to their
	// bodies, for one-level blocking propagation.
	decls map[types.Object]*ast.FuncDecl
	// blockers describes, per package function, the blocking operation its
	// body performs ("" / absent when none).
	blockers map[types.Object]string

	// collect switches the walker into the propagation pre-pass: instead of
	// reporting, the first blocking operation found is recorded here.
	collect  bool
	found    string
	foundFix *SuggestedFix
}

func (w *lockWalker) indexFuncs() {
	w.decls = make(map[types.Object]*ast.FuncDecl)
	w.blockers = make(map[types.Object]string)
	for _, f := range w.pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := w.info.Defs[fd.Name]; obj != nil {
				w.decls[obj] = fd
			}
		}
	}
}

// propagate records, for every package function, whether its body performs
// a blocking operation that a caller's critical section would inherit. The
// body is analyzed under a sentinel held lock so the walker's own
// select-with-default exemption applies: a helper whose sends are all
// non-blocking does not propagate.
func (w *lockWalker) propagate() {
	sentinel := lockState{"<caller's lock>": true}
	for obj, fd := range w.decls {
		w.collect, w.found, w.foundFix = true, "", nil
		w.walkStmts(fd.Body.List, sentinel.clone())
		if w.found != "" {
			w.blockers[obj] = w.found
		}
	}
	w.collect, w.found, w.foundFix = false, "", nil
}

func (w *lockWalker) report(pos ast.Node, lock, what string) {
	if w.collect {
		if w.found == "" {
			w.found = what
		}
		return
	}
	w.pass.Reportf(pos.Pos(), "%s while %s is held: a blocked or panicking operation inside the critical section stalls every other lock holder (PR 4 Bus.Send class); make it non-blocking or move it after Unlock", what, lock)
}

// walkStmts interprets a statement list with the given entry lock state.
// The state mutates in place for sequential flow; nested bodies get clones.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held lockState) {
	for _, stmt := range stmts {
		w.walkStmt(stmt, held)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held lockState) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if lock, op, ok := w.lockOp(s.X); ok {
			if op == "lock" {
				held[lock] = true
			} else {
				delete(held, lock)
			}
			return
		}
		w.checkExpr(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the body;
		// the runtime releases it only after every later statement ran.
		if _, op, ok := w.lockOp(s.Call); ok && op == "unlock" {
			return
		}
		// Other deferred calls run while any still-held locks are held (a
		// deferred unlock registered earlier runs after them), so they are
		// analyzed under the state at the defer site. Arguments evaluate
		// immediately and are checked the same way.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			for _, arg := range s.Call.Args {
				w.checkExpr(arg, held)
			}
			w.walkStmts(fl.Body.List, held.clone())
			return
		}
		w.checkExpr(s.Call, held)
	case *ast.SendStmt:
		if lock, ok := held.any(); ok {
			w.report(s, lock, "blocking channel send")
		}
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
	case *ast.GoStmt:
		// The spawned goroutine does not hold this goroutine's locks; only
		// the argument evaluation happens here.
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, lockState{})
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		w.walkStmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		body := held.clone()
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		w.walkStmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.checkExpr(e, held)
				}
				w.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, held.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, ok := cc.Comm.(*ast.SendStmt); ok && !hasDefault {
				if lock, locked := held.any(); locked {
					w.report(send, lock, "blocking channel send (select without default)")
				}
			}
			w.walkStmts(cc.Body, held.clone())
		}
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
	case *ast.DeclStmt:
		w.checkExpr(s.Decl, held)
	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
	default:
		// Branch/empty/etc: nothing to interpret.
	}
}

// lockOp classifies expr as a Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") call on a sync.Mutex or sync.RWMutex, returning the lock key.
func (w *lockWalker) lockOp(expr ast.Expr) (lock, op string, ok bool) {
	call, isCall := expr.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", false
	}
	t := w.info.TypeOf(sel.X)
	if t == nil || !isSyncLockType(t) {
		return "", "", false
	}
	return types.ExprString(sel.X), op, true
}

func isSyncLockType(t types.Type) bool {
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkExpr scans one expression subtree for blocking calls while locks are
// held. Function literals found inside expressions are analyzed as fresh
// lock scopes (they run elsewhere); the enclosing walker handles deferred
// and go'd literals before this sees them.
func (w *lockWalker) checkExpr(n ast.Node, held lockState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if fl, ok := m.(*ast.FuncLit); ok {
			w.walkStmts(fl.Body.List, lockState{})
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		lock, locked := held.any()
		if !locked {
			return true
		}
		if what, blocking := w.classifyCall(call); blocking {
			w.report(call, lock, what)
		}
		return true
	})
}

// classifyCall reports whether call is a blocking operation, describing it.
func (w *lockWalker) classifyCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// Plain identifier call: same-package function propagation. The
		// propagation pre-pass sees only primitive operations (w.collect),
		// keeping the analysis exactly one level deep and independent of
		// the order functions are examined in.
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && !w.collect {
			if obj := w.info.Uses[id]; obj != nil {
				if what, blocks := w.blockers[obj]; blocks {
					return "call to " + id.Name + " (" + what + ")", true
				}
			}
		}
		return "", false
	}
	// Qualified package function: net.Dial, os.WriteFile, ...
	if pkgPath, name, isPkg := pkgFunc(w.info, sel); isPkg {
		switch {
		case pkgPath == "net" && lockBlockingNetFuncs[name]:
			return "net." + name + " network call", true
		case pkgPath == "os" && lockBlockingOSFuncs[name]:
			return "os." + name + " file IO", true
		}
		return "", false
	}
	// Method call: classify by receiver type.
	recvT := w.info.TypeOf(sel.X)
	if recvT == nil {
		return "", false
	}
	name := sel.Sel.Name
	if pkg, typeName := namedTypeOf(recvT); pkg != "" {
		switch {
		case pkg == "net" && lockBlockingNetMethods[name]:
			return "net " + typeName + "." + name + " network IO", true
		case pkg == "os" && typeName == "File" && lockBlockingFileMethods[name]:
			return "os.File." + name + " file IO", true
		case pkg == "rpol/internal/obs" && typeName == "Events" && name == "Publish":
			return "obs event publish", true
		}
	}
	// Same-package method propagation (one level deep; see above).
	if !w.collect {
		if obj := w.info.Uses[sel.Sel]; obj != nil {
			if what, blocks := w.blockers[obj]; blocks {
				return "call to " + sel.Sel.Name + " (" + what + ")", true
			}
		}
	}
	return "", false
}

// namedTypeOf unwraps pointers and returns the defining package path and
// type name of a named type ("" when the type is unnamed or an interface
// from elsewhere).
func namedTypeOf(t types.Type) (pkgPath, name string) {
	for {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}
