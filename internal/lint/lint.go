// Package lint is rpol's from-scratch static-analysis framework, built on
// the standard library's go/parser, go/ast, and go/types alone (no
// golang.org/x/tools). It exists to make the protocol's determinism
// invariants — no wall clock, no global randomness, no unordered map
// iteration before hashing, no exact float equality, nil-safe
// observability — compile-time facts instead of runtime hopes: the commit-
// and-prove sampling verification (paper §4) is only sound if the manager's
// re-execution is bit-identical to the worker's original run.
//
// Findings can be suppressed where a violation is deliberate:
//
//	//rpolvet:ignore <analyzer> <reason>
//
// placed on, or on the line above, the offending line. The reason is
// mandatory; the driver rejects bare ignores.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and in rpolvet:ignore
	// directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer protects.
	Doc string
	// Applies reports whether the analyzer runs on the package with the
	// given import path. A nil Applies runs everywhere.
	Applies func(pkgPath string) bool
	// Run inspects one package, reporting findings through the pass.
	Run func(*Pass)
}

// Pass is the per-package, per-analyzer execution context handed to Run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix records a finding at pos carrying a suggested fix. A nil fix
// degrades to a plain finding.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
	if fix != nil {
		d.Fixes = []SuggestedFix{*fix}
	}
	*p.diags = append(*p.diags, d)
}

// Offsets converts an AST node span to (file, byte-offset) form for building
// TextEdits.
func (p *Pass) Offsets(start, end token.Pos) (file string, lo, hi int) {
	s := p.Pkg.Fset.Position(start)
	e := p.Pkg.Fset.Position(end)
	return s.Filename, s.Offset, e.Offset
}

// TextEdit is one byte-exact replacement in a source file: the half-open
// offset range [Start, End) is replaced with New.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// SuggestedFix is a machine-applicable remedy an analyzer attaches to a
// finding. All edits of a fix are applied together (rpolvet -fix).
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// SuppressReason carries the rpolvet:ignore justification when the
	// finding was deliberately waived (such findings are reported separately
	// and do not fail the run).
	SuppressReason string `json:"suppress_reason,omitempty"`
	// Fixes are machine-applicable remedies, if the analyzer knows one.
	Fixes []SuggestedFix `json:"fixes,omitempty"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// Run executes the analyzers over the packages. It returns the active
// findings (which should fail a CI run), the deliberately suppressed ones
// (kept visible for auditing), and any malformed suppression directives
// folded into the findings under the pseudo-analyzer name "rpolvet".
func Run(pkgs []*Package, analyzers []*Analyzer) (findings, suppressed []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range All() {
		known[a.Name] = true
	}

	for _, pkg := range pkgs {
		index, bad := directiveIndex(pkg, known)
		findings = append(findings, bad...)

		var diags []Diagnostic
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.PkgPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
		for _, d := range diags {
			if reason, ok := index.match(d); ok {
				d.SuppressReason = reason
				suppressed = append(suppressed, d)
			} else {
				findings = append(findings, d)
			}
		}
	}
	sortDiags(findings)
	sortDiags(suppressed)
	return findings, suppressed
}

// pkgFunc resolves sel to (package import path, member name) when it is a
// qualified reference to another package's top-level declaration, like
// time.Now or rand.Intn. It returns ok=false for field selections and
// method values.
func pkgFunc(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
