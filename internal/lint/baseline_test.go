package lint

import (
	"os"
	"path/filepath"
	"testing"
)

func baselineDiag(analyzer, file, msg string) Diagnostic {
	return Diagnostic{Analyzer: analyzer, File: file, Message: msg}
}

func TestBaselineApply(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod")
	abs := func(rel string) string { return filepath.Join(root, rel) }
	findings := []Diagnostic{
		baselineDiag("locksend", abs("a/a.go"), "send under lock"),
		baselineDiag("locksend", abs("a/a.go"), "send under lock"),
		baselineDiag("durablewrite", abs("b/b.go"), "raw write"),
	}
	b := &Baseline{Budget: []BaselineEntry{
		{Analyzer: "locksend", File: "a/a.go", Message: "send under lock", Count: 2},
		{Analyzer: "seedpurity", File: "c/c.go", Message: "impure seed", Count: 1},
	}}
	fresh, waived, stale := b.Apply(findings, root)
	if len(fresh) != 1 || fresh[0].Analyzer != "durablewrite" {
		t.Errorf("fresh = %v, want the one durablewrite finding", fresh)
	}
	if len(waived) != 2 {
		t.Errorf("waived = %v, want both locksend findings", waived)
	}
	if len(stale) != 1 || stale[0].Analyzer != "seedpurity" || stale[0].Count != 1 {
		t.Errorf("stale = %v, want the unused seedpurity entry", stale)
	}
}

// TestBaselineRatchet checks the downward-only property: a budget larger
// than the findings it covers goes stale by the surplus.
func TestBaselineRatchet(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	findings := []Diagnostic{
		baselineDiag("locksend", filepath.Join(root, "a.go"), "send under lock"),
	}
	b := &Baseline{Budget: []BaselineEntry{
		{Analyzer: "locksend", File: "a.go", Message: "send under lock", Count: 3},
	}}
	fresh, waived, stale := b.Apply(findings, root)
	if len(fresh) != 0 || len(waived) != 1 {
		t.Fatalf("fresh=%v waived=%v, want 0/1", fresh, waived)
	}
	if len(stale) != 1 || stale[0].Count != 2 {
		t.Fatalf("stale = %v, want the entry with surplus 2", stale)
	}
}

func TestNewBaselineRoundTrip(t *testing.T) {
	root := string(filepath.Separator) + "mod"
	findings := []Diagnostic{
		baselineDiag("locksend", filepath.Join(root, "a.go"), "send under lock"),
		baselineDiag("locksend", filepath.Join(root, "a.go"), "send under lock"),
		baselineDiag("seedpurity", filepath.Join(root, "b.go"), "impure seed"),
	}
	b := NewBaseline(findings, root)
	if len(b.Budget) != 2 {
		t.Fatalf("budget = %v, want 2 aggregated entries", b.Budget)
	}

	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, b); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, waived, stale := loaded.Apply(findings, root)
	if len(fresh) != 0 || len(waived) != 3 || len(stale) != 0 {
		t.Errorf("round-tripped baseline: fresh=%v waived=%v stale=%v, want 0/3/0", fresh, waived, stale)
	}
}

func TestLoadBaselineRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not json":    "{",
		"zero count":  `{"budget":[{"analyzer":"locksend","file":"a.go","message":"m","count":0}]}`,
		"no analyzer": `{"budget":[{"file":"a.go","message":"m","count":1}]}`,
		"duplicate":   `{"budget":[{"analyzer":"a","file":"f","message":"m","count":1},{"analyzer":"a","file":"f","message":"m","count":2}]}`,
	}
	for name, content := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadBaseline(path); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
}
