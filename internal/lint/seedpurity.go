package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeedPurity extends norandglobal from "no globals" to "derivation is
// traceable". The replay proof (paper §4) needs every randomized decision to
// be a pure function of (seed, identity, ordinal)-style inputs: the manager
// re-derives the worker's sampling/shuffle/fault decisions from the recorded
// seed, so a seed that ever touches wall clock, process state, crypto
// entropy, global rand draws, or mutable package state makes the replay
// unreproducible even though no global generator was used.
//
// The analyzer locates every seed-position argument — math/rand.NewSource,
// math/rand/v2's NewPCG/NewChaCha8, and any module-local function whose
// parameter is named seed/salt (or ends in Seed/Salt, e.g. tensor.NewRNG,
// prf.SeedFromString consumers, NewFaultPlan) — and walks the argument
// expression. The expression is impure, and a finding, if it contains:
//
//   - a call into time, os, or crypto/rand (wall clock, pids, env, entropy);
//   - a draw from the global math/rand state (the norandglobal set);
//   - a reference to a mutable package-level variable (constants are fine);
//   - a channel receive (ordering-dependent input).
//
// Everything else — literals, parameters, locals, struct fields, and calls
// into deterministic derivations like hash/PRF helpers — is admitted: those
// are exactly the traceable inputs the protocol can replay.
var SeedPurity = &Analyzer{
	Name: "seedpurity",
	Doc:  "rand sources and seed parameters must be derived from pure (seed, identity, ordinal) inputs, never wall clock, entropy, global rand, mutable globals, or channel receives",
	Run:  runSeedPurity,
}

// seedArgPositions maps stdlib constructors to the argument indexes that
// carry seed material.
var seedArgPositions = map[string]map[string][]int{
	"math/rand":    {"NewSource": {0}},
	"math/rand/v2": {"NewPCG": {0, 1}, "NewChaCha8": {0}},
}

func runSeedPurity(pass *Pass) {
	info := pass.Pkg.TypesInfo
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, idx := range seedArgIndexes(info, call) {
				if idx >= len(call.Args) {
					continue
				}
				arg := call.Args[idx]
				if why := seedImpurity(info, arg); why != "" {
					pass.Reportf(arg.Pos(), "seed argument is not a pure (seed, identity, ordinal) derivation: %s makes replay unreproducible; derive the seed from recorded inputs (see internal/prf)", why)
				}
			}
			return true
		})
	}
}

// seedArgIndexes returns the argument positions of call that carry seed
// material: stdlib rand constructors by table, module-local functions by
// parameter name.
func seedArgIndexes(info *types.Info, call *ast.CallExpr) []int {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgPath, name, isPkg := pkgFunc(info, sel); isPkg {
			if byName, ok := seedArgPositions[pkgPath]; ok {
				return byName[name]
			}
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "rpol/") {
		// Only module-local signatures are inspected by parameter name: the
		// stdlib's seed positions are tabled above, and third-party code is
		// out of scope by construction (the module is dependency-free).
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idxs []int
	for i := 0; i < sig.Params().Len(); i++ {
		if isSeedParamName(sig.Params().At(i).Name()) {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// calleeFunc resolves the called function's object, for plain and qualified
// calls alike. Method calls resolve too (seed-named method params count).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isSeedParamName reports whether a parameter name marks seed material.
func isSeedParamName(name string) bool {
	lower := strings.ToLower(name)
	return lower == "seed" || lower == "salt" ||
		strings.HasSuffix(name, "Seed") || strings.HasSuffix(name, "Salt")
}

// seedImpurePkgs are the packages whose calls poison a seed derivation.
var seedImpurePkgs = map[string]string{
	"time":        "wall-clock input",
	"os":          "process-state input",
	"crypto/rand": "crypto entropy",
}

// seedImpurity walks a seed expression and returns a description of the
// first impure input it contains, or "" when the expression is a traceable
// derivation.
func seedImpurity(info *types.Info, e ast.Expr) (why string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, name, isPkg := pkgFunc(info, sel)
			if !isPkg {
				return true
			}
			if kind, bad := seedImpurePkgs[pkgPath]; bad {
				why = pkgPath + "." + name + " (" + kind + ")"
				return false
			}
			if funcs, ok := globalRandFuncs[pkgPath]; ok && funcs[name] {
				why = pkgPath + "." + name + " (global rand draw)"
				return false
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				why = "a channel receive (ordering-dependent input)"
				return false
			}
		case *ast.Ident:
			obj := info.Uses[x]
			v, isVar := obj.(*types.Var)
			if !isVar || v.Pkg() == nil {
				return true
			}
			if v.Parent() == v.Pkg().Scope() {
				why = "package-level variable " + v.Name() + " (mutable global state)"
				return false
			}
		}
		return true
	})
	return why
}
