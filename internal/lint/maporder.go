package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder guards the packages whose outputs are hashed, committed, or put
// on the wire: commitment (Merkle trees over checkpoint payloads),
// checkpoint (serialized training snapshots), lsh (digests the manager
// compares), wire (canonical message encoding), and prf (deterministic
// challenge derivation). Go randomizes map iteration order on purpose, so
// a `for range` over a map on any path that feeds a hash or an encoder
// produces a different byte stream every run — the exact failure mode that
// makes naive proof-of-learning verification fragile.
//
// The one shape allowed through is the canonical fix itself: a loop that
// only collects the map's keys into a slice which a later statement in the
// same block sorts (sort.Strings/Ints/Float64s/Slice or slices.Sort*).
// Anything else — including genuinely order-free loops like commutative
// sums — needs an rpolvet:ignore stating why order cannot leak.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no raw map iteration in hashing/serialization packages; collect and sort keys first",
	Applies: pathIn(
		"rpol/internal/commitment",
		"rpol/internal/checkpoint",
		"rpol/internal/lsh",
		"rpol/internal/wire",
		"rpol/internal/prf",
	),
	Run: func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				stmts := stmtList(n)
				if stmts == nil {
					return true
				}
				for i, stmt := range stmts {
					rs, ok := stmt.(*ast.RangeStmt)
					if !ok {
						continue
					}
					t := info.TypeOf(rs.X)
					if t == nil {
						continue
					}
					if _, isMap := t.Underlying().(*types.Map); !isMap {
						continue
					}
					if isSortedKeyCollection(info, rs, stmts[i+1:]) {
						continue
					}
					pass.Reportf(rs.Pos(), "range over %s iterates in randomized order, which would poison hashed/serialized output; collect the keys into a slice and sort it first", types.TypeString(t, types.RelativeTo(pass.Pkg.Types)))
				}
				return true
			})
		}
	},
}

// stmtList returns the statement list a node directly holds, covering every
// construct that can contain a range statement: blocks, switch cases, and
// select clauses.
func stmtList(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

// isSortedKeyCollection recognizes the canonical deterministic-iteration
// idiom:
//
//	for k := range m {
//		keys = append(keys, k)
//	}
//	sort.Strings(keys)
//
// The loop must bind only the key, its body must be exactly one append of
// that key into a slice variable, and a later statement in the same block
// must pass that variable to a sort (sort.* or slices.Sort*) call.
func isSortedKeyCollection(info *types.Info, rs *ast.RangeStmt, rest []ast.Stmt) bool {
	keyIdent, ok := rs.Key.(*ast.Ident)
	if !ok || keyIdent.Name == "_" {
		return false
	}
	if v, ok := rs.Value.(*ast.Ident); ok && v.Name != "_" {
		return false // binds values too: not a pure key collection
	}
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || arg0.Name != dst.Name {
		return false
	}
	keyObj := info.Defs[keyIdent]
	if arg1, ok := call.Args[1].(*ast.Ident); !ok || keyObj == nil || info.Uses[arg1] != keyObj {
		return false
	}
	dstObj := objectOf(info, dst)
	if dstObj == nil {
		return false
	}
	for _, stmt := range rest {
		if sortsSlice(info, stmt, dstObj) {
			return true
		}
	}
	return false
}

// sortsSlice reports whether stmt is a sort.*/slices.Sort* call whose first
// argument is the given slice variable.
func sortsSlice(info *types.Info, stmt ast.Stmt, slice types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkgPath, _, ok := pkgFunc(info, sel)
	if !ok || (pkgPath != "sort" && pkgPath != "slices") {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && info.Uses[arg] == slice
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
