package lint

import (
	"go/ast"
	"go/types"
)

// GoroutineLeak retires the PR 6 pprof-listener class: background work that
// nothing can ever stop. The original bug was `-pprof` spinning up
// http.ListenAndServe in a goroutine with no server handle — the listener
// and goroutine outlived every run that requested them. The fixed form binds
// the listener explicitly and shuts the server down with a bounded deadline,
// which is the shape this analyzer admits.
//
// Full escape analysis is undecidable, so the check is a package-local
// reachability heuristic over the teardown idioms this codebase actually
// uses. First it collects, package-wide:
//
//   - quit channels: terminal names appearing in close(ch) calls;
//   - waited groups: receivers of sync.WaitGroup.Wait calls;
//   - teardown receivers: values whose Shutdown/Close/Stop is called.
//
// Every `go` statement must then resolve to a body (an inline literal or a
// same-package function/method) that either signals a waited WaitGroup
// (wg.Done), receives from or ranges over a quit channel (or a
// context.Done()), or calls into a value with package-visible teardown. A
// `go` onto another package's code passes only when the call's receiver has
// package-visible teardown (go srv.Serve(ln) with srv.Shutdown elsewhere).
// Every net.Listen result must reach a Close: directly, through a teardown
// receiver it is handed to (srv.Serve(ln)), or through a struct field that
// the owning type's teardown closes.
//
// The heuristic is name-based across the package, so it can be fooled —
// that is what the fixtures pin down — but it cannot be fooled silently in
// the direction that matters: a goroutine or listener with no reachable
// teardown idiom at all is always a finding.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "every go statement and net.Listen needs a reachable bounded-shutdown path: WaitGroup.Wait, a closed quit channel, or Shutdown/Close teardown (PR 6 pprof-listener leak class)",
	Run:  runGoroutineLeak,
}

// netListenFuncs are the net entry points that open listeners.
var netListenFuncs = map[string]bool{
	"Listen": true, "ListenPacket": true, "ListenTCP": true,
	"ListenUDP": true, "ListenUnix": true, "ListenIP": true,
}

// leakIndex is the package-wide teardown vocabulary.
type leakIndex struct {
	closedChans map[string]bool // close(X): terminal name of X
	waitedWGs   map[string]bool // X.Wait() on sync.WaitGroup: terminal of X
	teardowns   map[string]bool // X.Shutdown()/X.Close()/X.Stop(): terminal of X
	decls       map[types.Object]*ast.FuncDecl
	info        *types.Info
}

func runGoroutineLeak(pass *Pass) {
	ix := buildLeakIndex(pass)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if !ix.goHasShutdownPath(s.Call) {
					pass.Reportf(s.Pos(), "goroutine has no reachable bounded-shutdown path (no waited WaitGroup, no closed quit channel, no Shutdown/Close teardown): it outlives the run that spawned it (PR 6 pprof-listener class)")
				}
			case *ast.AssignStmt:
				ix.checkListenAssign(pass, f, s)
			}
			return true
		})
	}
}

func buildLeakIndex(pass *Pass) *leakIndex {
	ix := &leakIndex{
		closedChans: map[string]bool{},
		waitedWGs:   map[string]bool{},
		teardowns:   map[string]bool{},
		decls:       map[types.Object]*ast.FuncDecl{},
		info:        pass.Pkg.TypesInfo,
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := ix.info.Defs[fd.Name]; obj != nil {
					ix.decls[obj] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "close" && len(call.Args) == 1 {
				if name := terminalName(call.Args[0]); name != "" {
					ix.closedChans[name] = true
				}
				return true
			}
			sel, isSel := call.Fun.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			name := terminalName(sel.X)
			if name == "" {
				return true
			}
			switch sel.Sel.Name {
			case "Wait":
				if t := ix.info.TypeOf(sel.X); t != nil {
					if pkg, tn := namedTypeOf(t); pkg == "sync" && tn == "WaitGroup" {
						ix.waitedWGs[name] = true
					}
				}
			case "Shutdown", "Close", "Stop":
				ix.teardowns[name] = true
			}
			return true
		})
	}
	return ix
}

// terminalName reduces an expression to the identifier a human would name
// it by: `h.wg` -> "wg", `client.out` -> "out", `done` -> "done".
func terminalName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.ParenExpr:
		return terminalName(x.X)
	case *ast.UnaryExpr:
		return terminalName(x.X)
	}
	return ""
}

// goHasShutdownPath reports whether the spawned work is reachable by one of
// the package's teardown idioms.
func (ix *leakIndex) goHasShutdownPath(call *ast.CallExpr) bool {
	body := ix.resolveBody(call)
	if body != nil {
		return ix.bodyHasShutdownPath(body)
	}
	// Opaque target (another package's code): the call itself must be a
	// method on a torn-down receiver (go srv.Serve(ln)), or hand over a quit
	// channel the package closes.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if name := terminalName(sel.X); name != "" && ix.teardowns[name] {
			return true
		}
	}
	for _, arg := range call.Args {
		if name := terminalName(arg); name != "" && ix.closedChans[name] {
			if t := ix.info.TypeOf(arg); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true
				}
			}
		}
	}
	return false
}

// resolveBody finds the statements the goroutine will run: an inline
// literal's body, or the declaration of a same-package function or method.
func (ix *leakIndex) resolveBody(call *ast.CallExpr) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj := ix.info.Uses[fun]; obj != nil {
			if fd, ok := ix.decls[obj]; ok {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj := ix.info.Uses[fun.Sel]; obj != nil {
			if fd, ok := ix.decls[obj]; ok {
				return fd.Body
			}
		}
	}
	return nil
}

// bodyHasShutdownPath scans a goroutine body for any teardown idiom.
func (ix *leakIndex) bodyHasShutdownPath(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := terminalName(sel.X)
			switch sel.Sel.Name {
			case "Done":
				// wg.Done pairing with a package-visible wg.Wait.
				if t := ix.info.TypeOf(sel.X); t != nil {
					if pkg, tn := namedTypeOf(t); pkg == "sync" && tn == "WaitGroup" && ix.waitedWGs[recv] {
						found = true
					}
				}
			default:
				// A call into a value with package-visible teardown:
				// srv.Serve(...), h.serveConn(...) where srv/h is shut down.
				if recv != "" && ix.teardowns[recv] {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// <-quit / <-ctx.Done()
			if x.Op.String() == "<-" {
				if ix.recvIsQuit(x.X) {
					found = true
				}
			}
		case *ast.RangeStmt:
			// for msg := range ch where ch is a closed channel.
			if name := terminalName(x.X); name != "" && ix.closedChans[name] {
				if t := ix.info.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// recvIsQuit reports whether a receive operand is a quit signal: a channel
// the package closes, or a context.Done()-style call.
func (ix *leakIndex) recvIsQuit(e ast.Expr) bool {
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	if name := terminalName(e); name != "" && ix.closedChans[name] {
		if t := ix.info.TypeOf(e); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return true
			}
		}
	}
	return false
}

// checkListenAssign flags net.Listen results that never reach a Close.
func (ix *leakIndex) checkListenAssign(pass *Pass, f *ast.File, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgPath, name, isPkg := pkgFunc(ix.info, sel)
	if !isPkg || pkgPath != "net" || !netListenFuncs[name] {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		pass.Reportf(call.Pos(), "net.%s result is discarded: the listener can never be closed (PR 6 leak class)", name)
		return
	}
	if ix.listenerReachesClose(f, id) {
		return
	}
	pass.Reportf(call.Pos(), "net.%s listener %q has no reachable Close: close it directly, hand it to a server with Shutdown/Close teardown, or store it in a field the owner's teardown closes (PR 6 pprof-listener leak class)", name, id.Name)
}

// listenerReachesClose scans the listener's file for the admissible
// ownership transfers: a direct Close, a call on a torn-down receiver
// taking the listener as an argument, or storage into a struct field with
// package-visible teardown.
func (ix *leakIndex) listenerReachesClose(f *ast.File, ln *ast.Ident) bool {
	obj := objectOf(ix.info, ln)
	if obj == nil {
		return false
	}
	if ix.teardowns[ln.Name] {
		return true
	}
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			// srv.Serve(ln) where srv has teardown.
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := terminalName(sel.X)
			if recv == "" || !ix.teardowns[recv] {
				return true
			}
			for _, arg := range x.Args {
				if aid, isIdent := arg.(*ast.Ident); isIdent && ix.info.Uses[aid] == obj {
					found = true
				}
			}
		case *ast.KeyValueExpr:
			// TCPHub{listener: ln} where the field name has teardown
			// (h.listener.Close() in the owner's Close).
			key, isIdent := x.Key.(*ast.Ident)
			if !isIdent {
				return true
			}
			if vid, ok := x.Value.(*ast.Ident); ok && ix.info.Uses[vid] == obj && ix.teardowns[key.Name] {
				found = true
			}
		case *ast.AssignStmt:
			// h.listener = ln with field teardown.
			for i, lhs := range x.Lhs {
				fieldSel, isSel := lhs.(*ast.SelectorExpr)
				if !isSel || i >= len(x.Rhs) {
					continue
				}
				if vid, ok := x.Rhs[i].(*ast.Ident); ok && ix.info.Uses[vid] == obj && ix.teardowns[fieldSel.Sel.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
