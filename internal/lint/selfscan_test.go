package lint

import (
	"strings"
	"testing"
)

// TestRepositoryIsRPolvetClean loads the whole module and runs the full
// analyzer suite over it: the repo must stay free of unsuppressed findings,
// so any regression of the determinism invariants fails `go test` as well
// as the dedicated CI step.
func TestRepositoryIsRPolvetClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "rpol" {
		t.Fatalf("module path = %q, want rpol", mod.Path)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(mod.Packages))
	}
	findings, suppressed := Run(mod.Packages, All())
	for _, d := range findings {
		t.Errorf("rpolvet finding: %s", d)
	}
	// The deliberate exceptions stay visible: every suppression must carry
	// its reason.
	for _, d := range suppressed {
		if strings.TrimSpace(d.SuppressReason) == "" {
			t.Errorf("suppressed finding without reason: %s", d)
		}
	}
	if len(suppressed) == 0 {
		t.Log("note: no suppressed findings; expected a few annotated exceptions")
	}
}

// TestLoadModuleTypeInfo spot-checks that the loader produces real type
// information, not best-effort partial data: rpol/internal/obs must resolve
// with its exported instruments typed.
func TestLoadModuleTypeInfo(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var obsPkg *Package
	for _, p := range mod.Packages {
		if p.PkgPath == "rpol/internal/obs" {
			obsPkg = p
		}
	}
	if obsPkg == nil {
		t.Fatal("rpol/internal/obs not loaded")
	}
	for _, name := range []string{"Counter", "Gauge", "Histogram", "Registry", "Tracer", "Span", "Observer", "Clock"} {
		if obsPkg.Types.Scope().Lookup(name) == nil {
			t.Errorf("obs.%s not in package scope", name)
		}
	}
	if obsPkg.TypesInfo == nil || len(obsPkg.TypesInfo.Uses) == 0 {
		t.Error("no Uses info recorded")
	}
}
