package lint

import (
	"fmt"
	"strings"
	"testing"
)

// selfScanSuppressions is the audited budget of deliberate exceptions in
// the repository. Adding a //rpolvet:ignore is a reviewed decision: bump
// this count in the same change, with the justification in the directive.
const selfScanSuppressions = 4

// TestRepositoryIsRPolvetClean loads the whole module and runs the full
// analyzer suite over it: the repo must stay free of unsuppressed findings,
// so any regression of the determinism invariants fails `go test` as well
// as the dedicated CI step.
func TestRepositoryIsRPolvetClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod.Path != "rpol" {
		t.Fatalf("module path = %q, want rpol", mod.Path)
	}
	if len(mod.Packages) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(mod.Packages))
	}
	findings, suppressed := Run(mod.Packages, All())
	for _, d := range findings {
		t.Errorf("rpolvet finding: %s", d)
	}
	// The deliberate exceptions stay visible: every suppression must carry
	// its reason, and the total is pinned so a new waiver cannot slip in
	// without a reviewed bump of selfScanSuppressions.
	for _, d := range suppressed {
		if strings.TrimSpace(d.SuppressReason) == "" {
			t.Errorf("suppressed finding without reason: %s", d)
		}
	}
	if len(suppressed) != selfScanSuppressions {
		t.Errorf("repository carries %d suppressions, want exactly %d:", len(suppressed), selfScanSuppressions)
		for _, d := range suppressed {
			t.Errorf("  %s", d)
		}
	}
}

// TestSelfScanDeterministic runs the full suite twice over freshly loaded
// module snapshots and requires byte-identical output. Analyzer determinism
// is itself a protocol invariant: a finding that flickers with map
// iteration order would make the CI gate flaky and the baseline unstable.
func TestSelfScanDeterministic(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		mod, err := LoadModule(root)
		if err != nil {
			t.Fatal(err)
		}
		findings, suppressed := Run(mod.Packages, All())
		var b strings.Builder
		for _, d := range findings {
			fmt.Fprintf(&b, "F %s\n", d)
		}
		for _, d := range suppressed {
			fmt.Fprintf(&b, "S %s [%s]\n", d, d.SuppressReason)
		}
		return b.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("two self-scans differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// TestCheckedInBaselineIsEmptyAndFresh pins the debt ledger's steady state:
// the repository carries no baselined findings, so the checked-in file must
// be an empty budget that applies without waiving or going stale.
func TestCheckedInBaselineIsEmptyAndFresh(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(root + "/.rpolvet-baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Budget) != 0 {
		t.Errorf("checked-in baseline carries %d entries, want an empty budget (burn debt down, then -writebaseline)", len(b.Budget))
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	findings, _ := Run(mod.Packages, All())
	fresh, waived, stale := b.Apply(findings, root)
	if len(fresh) != len(findings) || len(waived) != 0 || len(stale) != 0 {
		t.Errorf("empty baseline misapplied: fresh=%d waived=%d stale=%d over %d findings",
			len(fresh), len(waived), len(stale), len(findings))
	}
}

// TestLoadModuleTypeInfo spot-checks that the loader produces real type
// information, not best-effort partial data: rpol/internal/obs must resolve
// with its exported instruments typed.
func TestLoadModuleTypeInfo(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var obsPkg *Package
	for _, p := range mod.Packages {
		if p.PkgPath == "rpol/internal/obs" {
			obsPkg = p
		}
	}
	if obsPkg == nil {
		t.Fatal("rpol/internal/obs not loaded")
	}
	for _, name := range []string{"Counter", "Gauge", "Histogram", "Registry", "Tracer", "Span", "Observer", "Clock"} {
		if obsPkg.Types.Scope().Lookup(name) == nil {
			t.Errorf("obs.%s not in package scope", name)
		}
	}
	if obsPkg.TypesInfo == nil || len(obsPkg.TypesInfo.Uses) == 0 {
		t.Error("no Uses info recorded")
	}
}
