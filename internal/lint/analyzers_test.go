package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// fixturePkgPath maps each analyzer fixture to an import path inside the
// analyzer's scope, so package-scoped checks consider themselves
// applicable.
var fixtureCases = []struct {
	analyzer *Analyzer
	pkgPath  string
}{
	{NoWallClock, "rpol/internal/rpol"},
	{NoRandGlobal, "rpol/internal/adversary"},
	{MapOrder, "rpol/internal/commitment"},
	{FloatEq, "rpol/internal/stats"},
	{NilSafeObs, "rpol/internal/obs"},
	{LockSend, "rpol/internal/netsim"},
	{DurableWrite, "rpol/internal/journal"},
	{GoroutineLeak, "rpol/internal/obshttp"},
	{SeedPurity, "rpol/internal/faults"},
}

func loadFixture(t *testing.T, a *Analyzer, kind, pkgPath string) (findings, suppressed []Diagnostic) {
	t.Helper()
	dir := filepath.Join("testdata", a.Name, kind)
	pkg, err := LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantComments scans a fixture directory for `// want "substring"`
// expectations, keyed file:line.
func wantComments(t *testing.T, dir string) map[string]string {
	t.Helper()
	wants := make(map[string]string)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			if m := wantRe.FindStringSubmatch(sc.Text()); m != nil {
				abs, err := filepath.Abs(path)
				if err != nil {
					t.Fatal(err)
				}
				wants[posKey(abs, line)] = m[1]
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return wants
}

func posKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// TestAnalyzerDetections checks each analyzer's "bad" fixture: every
// // want comment must produce a matching finding, and every finding must
// be expected.
func TestAnalyzerDetections(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			findings, suppressed := loadFixture(t, tc.analyzer, "bad", tc.pkgPath)
			if len(suppressed) != 0 {
				t.Errorf("bad fixture produced suppressed findings: %v", suppressed)
			}
			wants := wantComments(t, filepath.Join("testdata", tc.analyzer.Name, "bad"))
			if len(wants) == 0 {
				t.Fatal("bad fixture has no // want expectations")
			}
			matched := make(map[string]bool)
			for _, d := range findings {
				key := posKey(d.File, d.Line)
				want, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding %s", d)
					continue
				}
				if !strings.Contains(d.Message, want) {
					t.Errorf("finding %s does not contain %q", d, want)
				}
				matched[key] = true
			}
			for key, want := range wants {
				if !matched[key] {
					t.Errorf("no finding at %s matching %q", key, want)
				}
			}
		})
	}
}

// TestAnalyzerCleanFixtures checks that idiomatic code produces no
// findings at all.
func TestAnalyzerCleanFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			findings, suppressed := loadFixture(t, tc.analyzer, "clean", tc.pkgPath)
			for _, d := range findings {
				t.Errorf("clean fixture flagged: %s", d)
			}
			for _, d := range suppressed {
				t.Errorf("clean fixture should not need suppressions: %s", d)
			}
		})
	}
}

// TestAnalyzerSuppressions checks that rpolvet:ignore waives findings and
// preserves the reason for auditing.
func TestAnalyzerSuppressions(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			findings, suppressed := loadFixture(t, tc.analyzer, "suppressed", tc.pkgPath)
			for _, d := range findings {
				t.Errorf("suppressed fixture still fails: %s", d)
			}
			if len(suppressed) == 0 {
				t.Fatal("suppressed fixture produced no suppressed findings; the fixture no longer triggers the analyzer")
			}
			for _, d := range suppressed {
				if d.SuppressReason == "" {
					t.Errorf("suppressed finding lost its reason: %s", d)
				}
				if d.Analyzer != tc.analyzer.Name {
					t.Errorf("suppressed finding has analyzer %q, want %q", d.Analyzer, tc.analyzer.Name)
				}
			}
		})
	}
}

// TestMalformedDirectives checks that bad rpolvet:ignore comments are
// reported instead of silently tolerated.
func TestMalformedDirectives(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "directives", "bad"), "rpol/internal/rpol")
	if err != nil {
		t.Fatal(err)
	}
	findings, suppressed := Run([]*Package{pkg}, All())
	if len(suppressed) != 0 {
		t.Errorf("unexpected suppressions: %v", suppressed)
	}
	var msgs []string
	for _, d := range findings {
		if d.Analyzer != "rpolvet" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"needs an analyzer name and a reason",
		"unknown analyzer nosuchanalyzer",
		"nowallclock needs a reason",
		"put a space between rpolvet:ignore and the analyzer name",
		"must be a // line comment",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing directive diagnostic %q in:\n%s", want, joined)
		}
	}
	if len(findings) != 5 {
		t.Errorf("got %d directive findings, want 5: %v", len(findings), findings)
	}
}

// TestSuiteSize pins the acceptance requirement of at least five distinct
// analyzers.
func TestSuiteSize(t *testing.T) {
	all := All()
	if len(all) < 5 {
		t.Fatalf("suite has %d analyzers, want >= 5", len(all))
	}
	seen := make(map[string]bool)
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
