package lint

import "go/ast"

// wallClockFuncs are the time-package entry points that read or depend on
// the process wall clock. time.Duration arithmetic and the time.Time type
// itself are fine — it is the *sampling* of ambient time that breaks
// same-seed byte-identical re-execution.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Sleep":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// NoWallClock enforces the determinism contract from DESIGN.md: protocol
// code must take timestamps from an injected obs.Clock (simulated by
// default, wall time only behind the explicit -wallclock opt-in), never
// from the ambient time package. Verification soundness rests on the
// manager's re-execution of a sampled training interval being bit-identical
// to the worker's original run; a wall-clock read that leaks into hashed or
// serialized state breaks that silently. internal/obs implements the Clock
// abstraction and is the one place allowed to touch the real clock.
var NoWallClock = &Analyzer{
	Name:    "nowallclock",
	Doc:     "protocol code must read time through an injected obs.Clock, never time.Now/Since/Sleep and friends",
	Applies: pathNotIn("rpol/internal/obs"),
	Run: func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if pkgPath, name, ok := pkgFunc(pass.Pkg.TypesInfo, sel); ok && pkgPath == "time" && wallClockFuncs[name] {
					pass.Reportf(sel.Pos(), "time.%s reads the wall clock, which breaks bit-reproducible re-execution; thread an injected obs.Clock (internal/obs/clock.go) instead", name)
				}
				return true
			})
		}
	},
}
