// Package fixture exercises norandglobal true positives.
package fixture

import "math/rand"

func draw() float64 {
	return rand.Float64() // want "math/rand.Float64 draws from the global rand source"
}

func pick(n int) int {
	return rand.Intn(n) // want "math/rand.Intn draws from the global rand source"
}

func mix(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "math/rand.Shuffle draws from the global rand source"
}
