// Package fixture exercises norandglobal-clean code: the injected-generator
// pattern from internal/tensor/rand.go. Constructing a seeded source is the
// approved route; only the package-level draws are banned.
package fixture

import "math/rand"

type rng struct {
	src *rand.Rand
}

func newRNG(seed int64) *rng {
	return &rng{src: rand.New(rand.NewSource(seed))}
}

func (r *rng) draw() float64 { return r.src.Float64() }

func (r *rng) pick(n int) int { return r.src.Intn(n) }
