// Package fixture exercises norandglobal suppression.
package fixture

import "math/rand"

func jitter() float64 {
	//rpolvet:ignore norandglobal demo-only jitter; never reaches protocol state
	return rand.Float64()
}
