// Package obs (fixture) exercises nilsafeobs true positives: exported
// pointer-receiver methods on instrument types that dereference the
// receiver without a nil guard.
package obs

import "sync/atomic"

// Counter mirrors the real obs.Counter shape.
type Counter struct {
	v atomic.Int64
}

func (c *Counter) Add(n int64) { // want "must open with a nil-receiver guard"
	c.v.Add(n)
}

// Value is guarded and must not be flagged.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Tracer mirrors the real obs.Tracer shape.
type Tracer struct {
	n atomic.Int64
}

func (t *Tracer) Start(name string) int64 { // want "must open with a nil-receiver guard"
	_ = name
	return t.n.Add(1)
}

// reset is unexported and exempt from the contract.
func (t *Tracer) reset() { t.n.Store(0) }
