// Package obs (fixture) exercises nilsafeobs suppression.
package obs

// Span mirrors the real obs.Span shape.
type Span struct {
	id int64
}

//rpolvet:ignore nilsafeobs construction-time accessor; only reachable through a non-nil tracer in this fixture
func (s *Span) ID() int64 {
	return s.id
}
