// Package obs (fixture) exercises nilsafeobs-clean code: every accepted
// guard shape from the real internal/obs package.
package obs

import "sync/atomic"

// Counter mirrors the real obs.Counter shape.
type Counter struct {
	v atomic.Int64
}

// Add opens with a compound guard.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc delegates to a guarded method.
func (c *Counter) Inc() { c.Add(1) }

// Value opens with a plain guard.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry mirrors the guard-after-prologue shape of obs.Registry.Snapshot:
// statements that do not touch the receiver may precede the guard.
type Registry struct {
	counters map[string]*Counter
}

// Snapshot guards after receiver-free setup.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Observer mirrors the chained-delegation shape of obs.Observer.Counter and
// the !=-guard shape of obs.Observer.OrDefault.
type Observer struct {
	registry *Registry
}

// Registry is guarded directly.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.registry
}

// Snapshot delegates through a guarded chain.
func (o *Observer) Snapshot() map[string]int64 { return o.Registry().Snapshot() }

// OrDefault uses the inverted guard form.
func (o *Observer) OrDefault() *Observer {
	if o != nil {
		return o
	}
	return &Observer{}
}
