// Package fixture exercises malformed rpolvet:ignore directives, which must
// themselves become findings so stale waivers cannot silently disable a
// check.
package fixture

func a() {
	//rpolvet:ignore
	_ = 1
}

func b() {
	//rpolvet:ignore nosuchanalyzer reason text here
	_ = 2
}

func c() {
	//rpolvet:ignore nowallclock
	_ = 3
}
