// Package fixture exercises malformed rpolvet:ignore directives, which must
// themselves become findings so stale waivers cannot silently disable a
// check.
package fixture

func a() {
	//rpolvet:ignore
	_ = 1
}

func b() {
	//rpolvet:ignore nosuchanalyzer reason text here
	_ = 2
}

func c() {
	//rpolvet:ignore nowallclock
	_ = 3
}

func d() {
	//rpolvet:ignorenowallclock glued prefix must not waive anything
	_ = 4
}

func e() {
	/* rpolvet:ignore nowallclock block comments have no anchor line */
	_ = 5
}
