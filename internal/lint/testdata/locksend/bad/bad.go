// Package fixture reproduces the PR 4 Bus.Send panic class: blocking
// operations executed while a sync lock is held.
package fixture

import (
	"net"
	"os"
	"sync"

	"rpol/internal/obs"
)

type message struct {
	payload []byte
}

type bus struct {
	mu     sync.Mutex
	closed bool
	inbox  chan message
	events *obs.Events
}

// Send is the exact pre-fix Bus.Send shape: a bare enqueue under the bus
// lock. A concurrent Close closing the inbox panics the sender, and a full
// inbox deadlocks every other bus user behind b.mu.
func (b *bus) Send(m message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.inbox <- m // want "blocking channel send while b.mu is held"
}

// sendSelect blocks just the same: a select without a default clause still
// parks the goroutine inside the critical section.
func (b *bus) sendSelect(m message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.inbox <- m: // want "blocking channel send (select without default) while b.mu is held"
	}
}

// enqueue hides the blocking send one call deep.
func (b *bus) enqueue(m message) {
	b.inbox <- m
}

func (b *bus) sendViaHelper(m message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.enqueue(m) // want "call to enqueue (blocking channel send) while b.mu is held"
}

func (b *bus) publishUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events.Publish(obs.StreamEvent{Kind: "drop"}) // want "obs event publish while b.mu is held"
}

type store struct {
	rw   sync.RWMutex
	path string
}

// snapshot performs file IO inside a read-locked section: every writer
// stalls behind the disk.
func (s *store) snapshot(data []byte) error {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return os.WriteFile(s.path, data, 0o644) // want "os.WriteFile file IO while s.rw is held"
}

func (b *bus) redial(addr string) (net.Conn, error) {
	b.mu.Lock()
	conn, err := net.Dial("tcp", addr) // want "net.Dial network call while b.mu is held"
	b.mu.Unlock()
	return conn, err
}
