// Package fixture is the post-PR-4 Bus.Send shape and its siblings: the
// lock may be held, but every operation inside it is non-blocking.
package fixture

import (
	"errors"
	"sync"

	"rpol/internal/obs"
)

var errFull = errors.New("inbox full")

type message struct {
	payload []byte
}

type bus struct {
	mu     sync.Mutex
	closed bool
	inbox  chan message
	events *obs.Events
}

// Send is the fixed form: the lock is held across the enqueue (a concurrent
// Close must not close the inbox mid-send), but the enqueue is non-blocking
// — a full inbox fails loudly instead of parking the goroutine.
func (b *bus) Send(m message) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return errors.New("closed")
	}
	select {
	case b.inbox <- m:
		return nil
	default:
		return errFull
	}
}

// sendAfterUnlock publishes only once the critical section has ended: the
// deferred closure is registered before the Lock, so LIFO ordering runs it
// after the deferred Unlock.
func (b *bus) sendAfterUnlock(m message) {
	var dropped bool
	defer func() {
		if dropped {
			b.events.Publish(obs.StreamEvent{Kind: "drop"})
		}
	}()
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.inbox <- m:
	default:
		dropped = true
	}
}

// sendOutsideLock releases the lock before a genuinely blocking send.
func (b *bus) sendOutsideLock(m message) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if !closed {
		b.inbox <- m
	}
}

// spawnWorker is fine: the goroutine body runs without this goroutine's
// locks.
func (b *bus) spawnWorker(m message) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.inbox <- m
	}()
}
