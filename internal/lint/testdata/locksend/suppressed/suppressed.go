// Package fixture exercises locksend suppression: a provably non-blocking
// send under a lock carrying its audit trail.
package fixture

import "sync"

type message struct {
	payload []byte
}

type registry struct {
	mu    sync.Mutex
	boxes map[string]chan message
}

func (r *registry) register(name string, m message) {
	box := make(chan message, 1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.boxes[name] = box
	//rpolvet:ignore locksend box was created above with capacity 1 and is not yet visible to any other goroutine, so this send cannot block
	box <- m
}
