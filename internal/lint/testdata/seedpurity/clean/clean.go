// Package fixture is the traceable-seed idiom seedpurity admits: every
// seed is a pure function of (seed, identity, ordinal) inputs.
package fixture

import "math/rand"

type workerID string

type config struct {
	Seed int64
}

// derive mixes the recorded base seed with identity and ordinal — the
// replayable derivation pattern (see internal/prf).
func derive(baseSeed int64, id workerID, epoch int) int64 {
	h := int64(len(id)) // stand-in for a real hash derivation
	return baseSeed*1099511628211 + h*31 + int64(epoch)
}

func pure(seed, ordinal int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ ordinal))
}

func forWorker(cfg config, id workerID, epoch int) *rand.Rand {
	return rand.New(rand.NewSource(derive(cfg.Seed, id, epoch)))
}

const defaultSeed = 42

func fromConstant() rand.Source {
	return rand.NewSource(defaultSeed)
}
