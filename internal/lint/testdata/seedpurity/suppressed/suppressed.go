// Package fixture exercises seedpurity suppression: a deliberately
// irreproducible seed carrying its audit trail.
package fixture

import (
	"math/rand"
	"time"
)

func jittered() rand.Source {
	//rpolvet:ignore seedpurity fixture-only backoff jitter; the value never reaches hashed, replayed, or persisted state
	return rand.NewSource(time.Now().UnixNano())
}
