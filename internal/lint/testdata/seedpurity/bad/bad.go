// Package fixture exercises seedpurity true positives: seeds whose
// derivation cannot be replayed.
package fixture

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

var processSalt int64

func fromClock() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want "time.Now (wall-clock input)"
}

func fromPid() rand.Source {
	return rand.NewSource(int64(os.Getpid())) // want "os.Getpid (process-state input)"
}

func fromGlobalDraw() rand.Source {
	return rand.NewSource(rand.Int63()) // want "math/rand.Int63 (global rand draw)"
}

func fromMutableGlobal() rand.Source {
	return rand.NewSource(processSalt) // want "package-level variable processSalt (mutable global state)"
}

func fromChannel(seeds chan int64) rand.Source {
	return rand.NewSource(<-seeds) // want "channel receive (ordering-dependent input)"
}

func fromPCG() *randv2.PCG {
	return randv2.NewPCG(uint64(time.Now().Unix()), 2) // want "time.Now (wall-clock input)"
}

// derive is a module-local derivation: its seed parameter inherits the
// purity requirement by name.
func derive(seed int64, ordinal int) int64 {
	return seed*31 + int64(ordinal)
}

func fromImpureDerivation() int64 {
	return derive(time.Now().Unix(), 3) // want "time.Now (wall-clock input)"
}
