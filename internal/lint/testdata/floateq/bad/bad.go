// Package fixture exercises floateq true positives.
package fixture

func converged(prev, cur float64) bool {
	return prev == cur // want "exact floating-point == comparison"
}

func changed(a, b float32) bool {
	return a != b // want "exact floating-point != comparison"
}

func isHalf(x float64) bool {
	return x == 0.5 // want "exact floating-point == comparison"
}

type score float64

func sameScore(a, b score) bool {
	return a == b // want "exact floating-point == comparison"
}
