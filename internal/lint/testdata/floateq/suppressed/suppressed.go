// Package fixture exercises floateq suppression: a deliberate exact
// comparison with its justification.
package fixture

func isDegenerate(lo, hi float64) bool {
	//rpolvet:ignore floateq exact degenerate-range check; both bounds come from the same pass over the data
	return lo == hi
}
