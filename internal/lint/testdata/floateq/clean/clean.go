// Package fixture exercises floateq-clean code: tolerance comparisons,
// exact-zero sentinel guards, and integer equality.
package fixture

import "math"

func converged(prev, cur, tol float64) bool {
	return math.Abs(prev-cur) <= tol
}

func safeInverse(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

func unsetDefault(eps float64) float64 {
	if eps == 0.0 {
		eps = 1e-8
	}
	return eps
}

func sameCount(a, b int) bool {
	return a == b
}
