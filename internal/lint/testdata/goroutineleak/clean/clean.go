// Package fixture is the post-PR-6 shape: every goroutine and listener has
// a reachable bounded-shutdown path.
package fixture

import (
	"net"
	"sync"
)

type server struct {
	wg   sync.WaitGroup
	quit chan struct{}
	ln   net.Listener
}

func newServer(addr string) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &server{quit: make(chan struct{}), ln: ln}
	s.wg.Add(1)
	go s.run()
	return s, nil
}

// run exits when Close closes the quit channel; the WaitGroup makes the
// exit observable.
func (s *server) run() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		}
	}
}

// Close is the bounded teardown: signal, close the listener, wait.
func (s *server) Close() {
	close(s.quit)
	_ = s.ln.Close()
	s.wg.Wait()
}

// fanout joins every spawned goroutine before returning.
func fanout(items []int, out chan<- int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			select {
			case out <- v:
			default:
			}
		}(it)
	}
	wg.Wait()
}

// drain exits when the producer closes the feed channel.
func drain(feed chan int) int {
	total := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := range feed {
			total += v
		}
	}()
	close(feed)
	<-done
	return total
}
