// Package fixture reproduces the PR 6 pprof-listener leak class: background
// work with no reachable teardown at all.
package fixture

import "net"

// serveDebug is the original -pprof shape: a listener and a goroutine that
// outlive every run that requested them.
func serveDebug(addr string) error {
	ln, err := net.Listen("tcp", addr) // want "has no reachable Close"
	if err != nil {
		return err
	}
	go acceptLoop(ln) // want "no reachable bounded-shutdown path"
	return nil
}

func acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go pump(conn) // want "no reachable bounded-shutdown path"
	}
}

func pump(conn net.Conn) {
	buf := make([]byte, 1024)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

func listenDiscard(addr string) {
	_, _ = net.Listen("tcp", addr) // want "result is discarded"
}

// tickForever is the fire-and-forget literal variant.
func tickForever(ch chan int) {
	go func() { // want "no reachable bounded-shutdown path"
		for {
			ch <- 1
		}
	}()
}
