// Package fixture exercises goroutineleak suppression: deliberately
// process-lifetime work carrying its audit trail.
package fixture

import "net"

func fire(ch chan int) {
	//rpolvet:ignore goroutineleak one-shot helper goroutine; it exits after a single buffered send and the process owns its lifetime
	go func() {
		ch <- 1
	}()
}

func probe() error {
	//rpolvet:ignore goroutineleak probe listener is intentionally process-lifetime; the OS reclaims it at exit in this fixture
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	_ = ln
	return nil
}
