// Package fixture exercises maporder true positives: raw map iteration on
// paths that feed hashing or serialization.
package fixture

import "crypto/sha256"

func hashAll(payloads map[string][]byte) [32]byte {
	h := sha256.New()
	for name, p := range payloads { // want "range over map"
		h.Write([]byte(name))
		h.Write(p)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

type digestSet map[uint64]struct{}

func flatten(s digestSet) []uint64 {
	var out []uint64
	for d := range s { // want "range over"
		out = append(out, d)
	}
	return out
}
