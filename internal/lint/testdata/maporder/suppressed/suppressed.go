// Package fixture exercises maporder suppression: a commutative reduction
// whose result is independent of iteration order.
package fixture

func footprint(sizes map[string]int64) int64 {
	var total int64
	//rpolvet:ignore maporder commutative sum over values; iteration order never observed
	for _, n := range sizes {
		total += n
	}
	return total
}
