// Package fixture exercises maporder-clean code: the canonical
// collect-keys-then-sort idiom, which the analyzer recognizes without any
// annotation, plus ordinary slice iteration.
package fixture

import (
	"crypto/sha256"
	"sort"
)

func hashAll(payloads map[string][]byte) [32]byte {
	keys := make([]string, 0, len(payloads))
	for k := range payloads {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write(payloads[k])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func sumLengths(chunks [][]byte) int {
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	return total
}
