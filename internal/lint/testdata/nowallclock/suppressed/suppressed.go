// Package fixture exercises nowallclock suppression: a deliberate wall
// reading carrying a justification.
package fixture

import "time"

func bootBanner() string {
	//rpolvet:ignore nowallclock boot banner only; the value never reaches hashed or serialized state
	return time.Now().Format(time.RFC3339)
}

func trailing() int64 {
	return time.Now().UnixNano() //rpolvet:ignore nowallclock same-line waiver for the fixture
}
