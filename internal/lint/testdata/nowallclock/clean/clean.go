// Package fixture exercises nowallclock-clean code: duration arithmetic,
// time.Time values, and clock readings through an injected interface are
// all fine.
package fixture

import "time"

// Clock mirrors obs.Clock: the injectable time source protocol code must
// use.
type Clock interface {
	Now() int64
}

func perEpoch(c Clock, epochs int) time.Duration {
	start := c.Now()
	end := c.Now()
	return time.Duration((end - start) / int64(epochs))
}

func format(t time.Time) string {
	return t.Format(time.RFC3339)
}
