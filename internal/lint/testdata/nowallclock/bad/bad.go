// Package fixture exercises nowallclock true positives.
package fixture

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func pause() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}
