// Package fixture is the durable-write idiom the analyzer admits: every
// persisted byte travels through fsio's checksummed atomic path, and reads
// stay unrestricted.
package fixture

import (
	"os"

	"rpol/internal/fsio"
)

func save(path string, data []byte) error {
	return fsio.WriteFileAtomic(path, data)
}

func load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func stat(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}
