// Package fixture is the -fix round-trip input: applying the suggested
// fixes to this file must produce, byte for byte, the contents of
// testdata/durablewrite/fixed/fixed.go.
package fixture

import "rpol/internal/fsio"

func saveState(path string, blob []byte) error {
	return fsio.WriteFileAtomic(path, blob)
}

func saveIndex(path string, blob []byte) error {
	return fsio.WriteFileAtomic(path, blob)
}
