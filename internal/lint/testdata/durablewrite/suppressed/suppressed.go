// Package fixture exercises durablewrite suppression: a deliberate raw
// write that never becomes durable state, carrying its audit trail.
package fixture

import "os"

func probeWritable(dir string) error {
	//rpolvet:ignore durablewrite scratch probe file, removed immediately; it never becomes durable protocol state
	f, err := os.CreateTemp(dir, "probe-*")
	if err != nil {
		return err
	}
	name := f.Name()
	_ = f.Close()
	return os.Remove(name)
}
