// Package fixture is the -fix round-trip input: applying the suggested
// fixes to this file must produce, byte for byte, the contents of
// testdata/durablewrite/fixed/fixed.go.
package fixture

import "os"

func saveState(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o600)
}

func saveIndex(path string, blob []byte) error {
	return os.WriteFile(path, blob, 0o644)
}
