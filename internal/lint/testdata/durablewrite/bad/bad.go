// Package fixture exercises durablewrite true positives: raw os file IO in
// a durable package, the PR 5 torn-write class.
package fixture

import (
	"bufio"
	"os"
)

func saveRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o600) // want "os.WriteFile bypasses fsio's checksummed atomic write path"
}

func handRolled(path string) (*os.File, error) {
	return os.Create(path) // want "os.Create opens a raw persistence path"
}

func swap(tmp, path string) error {
	return os.Rename(tmp, path) // want "os.Rename opens a raw persistence path"
}

func writeHandle(f *os.File, data []byte) error {
	_, err := f.Write(data) // want "os.File.Write writes through a raw file handle"
	return err
}

func syncHandle(f *os.File) error {
	return f.Sync() // want "os.File.Sync writes through a raw file handle"
}

func flushBuffered(w *bufio.Writer) error {
	return w.Flush() // want "bufio.Writer.Flush commits buffered bytes without a frame checksum"
}
