package lint

import (
	"fmt"
	"sort"
	"strings"
)

// ApplyFixes merges every suggested fix attached to the diagnostics into
// per-file patched contents. readFile supplies the current bytes of a file
// (os.ReadFile in the driver; an in-memory map in tests). Only files with at
// least one edit appear in the result.
//
// Identical edits are deduplicated first — two findings in one file may both
// carry the same import rewrite — then overlapping edits are rejected: a
// textual fix engine must never guess how to merge conflicting rewrites, so
// conflicts surface as an error for a human instead of silently corrupting
// the file.
func ApplyFixes(diags []Diagnostic, readFile func(string) ([]byte, error)) (map[string][]byte, error) {
	byFile := map[string][]TextEdit{}
	seen := map[TextEdit]bool{}
	for _, d := range diags {
		for _, fix := range d.Fixes {
			for _, e := range fix.Edits {
				if seen[e] {
					continue
				}
				seen[e] = true
				byFile[e.File] = append(byFile[e.File], e)
			}
		}
	}

	out := make(map[string][]byte, len(byFile))
	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		edits := byFile[f]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		for i := 1; i < len(edits); i++ {
			if edits[i].Start < edits[i-1].End {
				return nil, fmt.Errorf("lint: conflicting fixes in %s: edits [%d,%d) and [%d,%d) overlap",
					f, edits[i-1].Start, edits[i-1].End, edits[i].Start, edits[i].End)
			}
		}
		src, err := readFile(f)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		patched, err := splice(src, edits)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes to %s: %w", f, err)
		}
		out[f] = patched
	}
	return out, nil
}

// splice applies non-overlapping, sorted edits to src back-to-front so
// earlier offsets stay valid.
func splice(src []byte, edits []TextEdit) ([]byte, error) {
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		if e.Start < 0 || e.End > len(src) || e.Start > e.End {
			return nil, fmt.Errorf("edit [%d,%d) out of range (file is %d bytes)", e.Start, e.End, len(src))
		}
		var b []byte
		b = append(b, src[:e.Start]...)
		b = append(b, e.New...)
		b = append(b, src[e.End:]...)
		src = b
	}
	return src, nil
}

// Diff renders a compact line diff between old and new contents for the
// dry-run mode. It trims the common prefix and suffix and prints the
// differing middle as -/+ lines — enough to audit a suggested fix without
// pulling in a real diff algorithm.
func Diff(path string, oldSrc, newSrc []byte) string {
	if string(oldSrc) == string(newSrc) {
		return ""
	}
	oldLines := strings.SplitAfter(string(oldSrc), "\n")
	newLines := strings.SplitAfter(string(newSrc), "\n")

	pre := 0
	for pre < len(oldLines) && pre < len(newLines) && oldLines[pre] == newLines[pre] {
		pre++
	}
	post := 0
	for post < len(oldLines)-pre && post < len(newLines)-pre &&
		oldLines[len(oldLines)-1-post] == newLines[len(newLines)-1-post] {
		post++
	}

	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s (fixed)\n", path, path)
	fmt.Fprintf(&b, "@@ line %d @@\n", pre+1)
	for _, l := range oldLines[pre : len(oldLines)-post] {
		b.WriteString("-" + strings.TrimSuffix(l, "\n") + "\n")
	}
	for _, l := range newLines[pre : len(newLines)-post] {
		b.WriteString("+" + strings.TrimSuffix(l, "\n") + "\n")
	}
	return b.String()
}
