package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis. Test files (_test.go) are not loaded: rpolvet guards the
// protocol's production paths, and tests are free to use wall clocks and
// ad-hoc randomness.
type Package struct {
	// PkgPath is the package's import path (e.g. "rpol/internal/wire").
	PkgPath string
	// Name is the package clause name.
	Name string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset positions every file in Files.
	Fset *token.FileSet
	// Files are the parsed sources, sorted by file name.
	Files []*ast.File
	// Types and TypesInfo carry the go/types results for the package.
	Types     *types.Package
	TypesInfo *types.Info
}

// Module is a fully loaded module: every non-test package, type-checked in
// dependency order.
type Module struct {
	// Path is the module path from go.mod (e.g. "rpol").
	Path string
	// Root is the absolute directory containing go.mod.
	Root string
	// Packages is sorted by import path.
	Packages []*Package
}

// loader type-checks module packages from source, resolving stdlib (and any
// other out-of-module) imports through compiler export data obtained from
// `go list -export`. This keeps the analyzer stack on the standard library
// alone: no golang.org/x/tools dependency.
type loader struct {
	fset      *token.FileSet
	root      string            // module root: where `go list` runs
	modPath   string            // "" when loading a stray directory (fixtures)
	goVersion string            // e.g. "go1.22"
	exports   map[string]string // import path -> export data file
	std       types.Importer    // gc export-data importer for non-local paths
	locals    map[string]*types.Package
}

func newLoader(root, modPath, goVersion string) *loader {
	l := &loader{
		fset:      token.NewFileSet(),
		root:      root,
		modPath:   modPath,
		goVersion: goVersion,
		exports:   make(map[string]string),
		locals:    make(map[string]*types.Package),
	}
	l.std = importer.ForCompiler(l.fset, "gc", func(importPath string) (io.ReadCloser, error) {
		file, err := l.lookupExport(importPath)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	})
	return l
}

// Import implements types.Importer: module-local paths resolve to packages
// this loader has already checked (dependency order guarantees they exist);
// everything else goes through export data.
func (l *loader) Import(importPath string) (*types.Package, error) {
	if importPath == "unsafe" {
		return types.Unsafe, nil
	}
	if l.isLocal(importPath) {
		if p, ok := l.locals[importPath]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("module package %q not loaded before its importer (cycle?)", importPath)
	}
	return l.std.Import(importPath)
}

func (l *loader) isLocal(importPath string) bool {
	if l.modPath == "" {
		return false
	}
	return importPath == l.modPath || strings.HasPrefix(importPath, l.modPath+"/")
}

// lookupExport maps an import path to its compiled export data file, asking
// `go list -export` on a cache miss (the -deps flag pulls in the transitive
// closure so one subprocess usually serves many subsequent lookups).
func (l *loader) lookupExport(importPath string) (string, error) {
	if f, ok := l.exports[importPath]; ok {
		return f, nil
	}
	if err := l.fetchExports(importPath); err != nil {
		return "", err
	}
	if f, ok := l.exports[importPath]; ok {
		return f, nil
	}
	return "", fmt.Errorf("no export data for %q", importPath)
}

func (l *loader) fetchExports(patterns ...string) error {
	args := append([]string{"list", "-export", "-e", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.root
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) && len(exitErr.Stderr) > 0 {
			msg = strings.TrimSpace(string(exitErr.Stderr))
		}
		return fmt.Errorf("go list -export %s: %s", strings.Join(patterns, " "), msg)
	}
	for _, line := range strings.Split(string(out), "\n") {
		ip, file, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if ok && ip != "" && file != "" {
			l.exports[ip] = file
		}
	}
	return nil
}

// check type-checks one package's parsed files.
func (l *loader) check(pkgPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:  l,
		GoVersion: l.goVersion,
		Error:     func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, errors.Join(typeErrs...))
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	l.locals[pkgPath] = tpkg
	return &Package{
		PkgPath:   pkgPath,
		Name:      tpkg.Name(),
		Dir:       dir,
		Fset:      l.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// hostBuild matches files against the host GOOS/GOARCH, exactly like the go
// tool: platform-variant sources (//go:build constraints, _amd64.go name
// suffixes) would otherwise collide as duplicate declarations in one package.
var hostBuild = func() build.Context {
	ctx := build.Default
	ctx.CgoEnabled = false
	return ctx
}()

// parseDir parses the non-test Go files of one directory as a single
// package. It returns nil files when the directory holds no buildable
// sources.
func (l *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		if strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if ok, err := hostBuild.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		full := filepath.Join(dir, n)
		f, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("%s: mixed package names %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, nil
}

// readModFile extracts the module path and language version from go.mod.
func readModFile(root string) (modPath, goVersion string, err error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(v)
		}
		if v, ok := strings.CutPrefix(line, "go "); ok {
			goVersion = "go" + strings.TrimSpace(v)
		}
	}
	if modPath == "" {
		return "", "", fmt.Errorf("%s/go.mod: no module directive", root)
	}
	return modPath, goVersion, nil
}

// FindModuleRoot walks up from dir to the nearest directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at root (skipping testdata, vendor, and hidden directories),
// resolving out-of-module imports through `go list -export` data.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, goVersion, err := readModFile(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, modPath, goVersion)
	// Prefetch export data for the module's whole dependency closure in one
	// subprocess; stragglers fall back to per-path lookups.
	if err := l.fetchExports("./..."); err != nil {
		return nil, err
	}

	// Discover package directories.
	dirFiles := make(map[string][]*ast.File) // import path -> files
	dirOf := make(map[string]string)         // import path -> directory
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		files, err := l.parseDir(p)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		pkgPath := modPath
		if rel != "." {
			pkgPath = path.Join(modPath, filepath.ToSlash(rel))
		}
		dirFiles[pkgPath] = files
		dirOf[pkgPath] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topologically order by module-local imports, then type-check.
	deps := make(map[string][]string, len(dirFiles))
	for pkgPath, files := range dirFiles {
		seen := map[string]bool{}
		for _, f := range files {
			for _, spec := range f.Imports {
				ip, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if l.isLocal(ip) && !seen[ip] {
					seen[ip] = true
					deps[pkgPath] = append(deps[pkgPath], ip)
				}
			}
		}
		sort.Strings(deps[pkgPath])
	}
	var order []string
	state := make(map[string]int) // 0 new, 1 visiting, 2 done
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case 1:
			return fmt.Errorf("import cycle through %s", p)
		case 2:
			return nil
		}
		state[p] = 1
		for _, d := range deps[p] {
			if _, ok := dirFiles[d]; !ok {
				return fmt.Errorf("%s imports %s, which has no sources in the module", p, d)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p] = 2
		order = append(order, p)
		return nil
	}
	roots := make([]string, 0, len(dirFiles))
	for p := range dirFiles {
		roots = append(roots, p)
	}
	sort.Strings(roots)
	for _, p := range roots {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	mod := &Module{Path: modPath, Root: root}
	for _, pkgPath := range order {
		pkg, err := l.check(pkgPath, dirOf[pkgPath], dirFiles[pkgPath])
		if err != nil {
			return nil, err
		}
		mod.Packages = append(mod.Packages, pkg)
	}
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].PkgPath < mod.Packages[j].PkgPath })
	return mod, nil
}

// LoadDir parses and type-checks a single directory as the package with the
// given import path. It exists for fixture tests: the path controls which
// package-scoped analyzers consider themselves applicable. The directory
// may import the standard library but not module-local packages.
func LoadDir(dir, pkgPath string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	_, goVersion, err := readModFile(root)
	if err != nil {
		return nil, err
	}
	l := newLoader(root, "", goVersion)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	return l.check(pkgPath, dir, files)
}
