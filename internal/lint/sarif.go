package lint

import "path/filepath"

// SARIF output (Static Analysis Results Interchange Format 2.1.0), the
// minimal subset code-review UIs ingest: one run, one driver, one rule per
// analyzer, one result per finding. Suppressed findings are carried with a
// SARIF suppression object so they render as reviewed-and-waived rather
// than vanishing.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// SARIFLog assembles the SARIF document for a run: active findings as
// error-level results, suppressed findings as results carrying an in-source
// suppression with its audited justification.
func SARIFLog(analyzers []*Analyzer, findings, suppressed []Diagnostic) any {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(findings)+len(suppressed))
	for _, d := range findings {
		results = append(results, sarifResultOf(d, nil))
	}
	for _, d := range suppressed {
		results = append(results, sarifResultOf(d, []sarifSuppression{{
			Kind:          "inSource",
			Justification: d.SuppressReason,
		}}))
	}
	return sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rpolvet", Rules: rules}},
			Results: results,
		}},
	}
}

func sarifResultOf(d Diagnostic, sup []sarifSuppression) sarifResult {
	return sarifResult{
		RuleID:  d.Analyzer,
		Level:   "error",
		Message: sarifMessage{Text: d.Message},
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(d.File)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			},
		}},
		Suppressions: sup,
	}
}
