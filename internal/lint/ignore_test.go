package lint

import (
	"strings"
	"testing"
	"unicode"
)

var ignoreKnownAnalyzers = map[string]bool{
	"nowallclock": true,
	"locksend":    true,
}

func TestParseIgnoreDirective(t *testing.T) {
	cases := []struct {
		name     string
		text     string
		analyzer string
		reason   string
		problem  string // substring; "" means valid
		isDir    bool
	}{
		{"valid", "//rpolvet:ignore locksend fresh channel cannot block", "locksend", "fresh channel cannot block", "", true},
		{"valid spaced", "// rpolvet:ignore nowallclock boot banner only", "nowallclock", "boot banner only", "", true},
		{"not a directive", "// plain comment", "", "", "", false},
		{"empty", "//rpolvet:ignore", "", "", "needs an analyzer name and a reason", true},
		{"unknown analyzer", "//rpolvet:ignore nosuch reason", "", "", "unknown analyzer nosuch", true},
		{"missing reason", "//rpolvet:ignore locksend", "", "", "locksend needs a reason", true},
		{"missing reason trailing space", "//rpolvet:ignore locksend   ", "", "", "locksend needs a reason", true},
		{"glued analyzer", "//rpolvet:ignorenowallclock reason here", "", "", "put a space between", true},
		{"glued junk", "//rpolvet:ignoreXYZ whatever", "", "", "put a space between", true},
		{"block comment", "/* rpolvet:ignore locksend reason */", "", "", "must be a // line comment", true},
		{"block comment multiline", "/*\nrpolvet:ignore locksend reason\n*/", "", "", "must be a // line comment", true},
		{"block without directive", "/* just a comment */", "", "", "", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analyzer, reason, problem, isDir := parseIgnoreDirective(tc.text, ignoreKnownAnalyzers)
			if isDir != tc.isDir {
				t.Fatalf("isDirective = %v, want %v", isDir, tc.isDir)
			}
			if tc.problem == "" {
				if problem != "" {
					t.Fatalf("unexpected problem %q", problem)
				}
			} else if !strings.Contains(problem, tc.problem) {
				t.Fatalf("problem %q does not contain %q", problem, tc.problem)
			}
			if analyzer != tc.analyzer || reason != tc.reason {
				t.Fatalf("got (%q, %q), want (%q, %q)", analyzer, reason, tc.analyzer, tc.reason)
			}
		})
	}
}

// FuzzIgnoreDirective hammers the directive parser with arbitrary comment
// text and checks the safety property the suppression system rests on: a
// directive either parses into a known analyzer plus a non-empty reason, or
// it is a problem finding — never a silent pass, and never a waiver for an
// analyzer that does not exist.
func FuzzIgnoreDirective(f *testing.F) {
	seeds := []string{
		"//rpolvet:ignore locksend fresh channel cannot block",
		"// rpolvet:ignore nowallclock boot banner only",
		"//rpolvet:ignore",
		"//rpolvet:ignore ",
		"//rpolvet:ignore locksend",
		"//rpolvet:ignore locksend\t",
		"//rpolvet:ignore nosuchanalyzer reason text",
		"//rpolvet:ignorenowallclock glued",
		"//rpolvet:ignoreXYZ junk suffix",
		"//rpolvet:ignore\tlocksend tab separated reason",
		"/* rpolvet:ignore locksend reason */",
		"/*\nrpolvet:ignore locksend\nreason\n*/",
		"//rpolvet:ignore locksend   spaced   reason   ",
		"//rpolvet:ignore locksend locksend locksend",
		"//not a directive at all",
		"//rpolvet:ignor locksend truncated marker",
		"// rpolvet:ignore", "///rpolvet:ignore locksend nested slashes",
		"//rpolvet:ignore \x00 binary", "//rpolvet:ignore locksend \xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, problem, isDirective := parseIgnoreDirective(text, ignoreKnownAnalyzers)
		if !isDirective {
			if analyzer != "" || reason != "" || problem != "" {
				t.Fatalf("non-directive returned data: (%q, %q, %q)", analyzer, reason, problem)
			}
			// Line comments that mention the marker at the start of their
			// text must never be skipped silently.
			trimmed := strings.TrimSpace(strings.TrimPrefix(text, "//"))
			if strings.HasPrefix(text, "//") && strings.HasPrefix(trimmed, "rpolvet:ignore") {
				t.Fatalf("directive-shaped comment %q was silently skipped", text)
			}
			return
		}
		if problem != "" {
			if analyzer != "" || reason != "" {
				t.Fatalf("malformed directive leaked a waiver: (%q, %q) for %q", analyzer, reason, text)
			}
			return
		}
		if !ignoreKnownAnalyzers[analyzer] {
			t.Fatalf("valid directive names unknown analyzer %q (text %q)", analyzer, text)
		}
		if strings.TrimFunc(reason, unicode.IsSpace) == "" {
			t.Fatalf("valid directive carries an empty reason (text %q)", text)
		}
		if !strings.HasPrefix(text, "//") {
			t.Fatalf("valid directive from a non-line comment %q", text)
		}
	})
}
