package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// obsNilSafeTypes are the internal/obs instrument and tracing types whose
// documented contract is "a nil receiver no-ops". Instrumented protocol
// code relies on this to skip enablement branches entirely, so a single
// unguarded method turns disabled observability into a panic on a hot path.
// (SpanTree and the Clock implementations are offline/construction-time
// helpers and are not part of the contract.)
var obsNilSafeTypes = map[string]bool{
	"Counter":      true,
	"Gauge":        true,
	"Histogram":    true,
	"Registry":     true,
	"Tracer":       true,
	"Span":         true,
	"Observer":     true,
	"Events":       true,
	"Subscription": true,
}

// NilSafeObs enforces the obs nil-safety contract established in PR 1:
// every exported pointer-receiver method on a metric/tracer type must
// handle a nil receiver before touching it. Two shapes satisfy the check:
//
//   - a guard `if recv == nil { ... }` (or a condition containing
//     `recv == nil` / `recv != nil`) appearing before any statement that
//     uses the receiver, or
//   - a body that is a single statement delegating to another method on the
//     receiver (e.g. `return o.Registry().Counter(name)`), inheriting that
//     method's guard.
var NilSafeObs = &Analyzer{
	Name:    "nilsafeobs",
	Doc:     "exported pointer-receiver methods on obs metric/tracer types must open with a nil-receiver guard",
	Applies: pathIn("rpol/internal/obs"),
	Run: func(pass *Pass) {
		info := pass.Pkg.TypesInfo
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
					continue
				}
				typeName, ptr := recvTypeName(fd.Recv.List[0].Type)
				if !ptr || !obsNilSafeTypes[typeName] {
					continue
				}
				if fd.Body == nil || len(fd.Body.List) == 0 {
					continue // no body, nothing can dereference the receiver
				}
				recvObj := recvObject(info, fd)
				if recvObj == nil {
					continue // unnamed receiver is never dereferenced
				}
				if nilGuarded(info, fd.Body.List, recvObj) || delegates(info, fd.Body.List, recvObj) {
					continue
				}
				pass.Reportf(fd.Name.Pos(), "exported method (*%s).%s must open with a nil-receiver guard or delegate to a guarded method: obs instruments promise that nil receivers no-op", typeName, fd.Name.Name)
			}
		}
	},
}

// recvTypeName unwraps a receiver type expression to its base type name,
// reporting whether it is a pointer receiver.
func recvTypeName(e ast.Expr) (name string, ptr bool) {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return t.Name, true
	case *ast.IndexExpr: // generic receiver *T[P]
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

func recvObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return info.Defs[names[0]]
}

// nilGuarded reports whether a nil check on recv appears among the
// top-level statements before any statement that uses recv.
func nilGuarded(info *types.Info, stmts []ast.Stmt, recv types.Object) bool {
	for _, stmt := range stmts {
		if ifs, ok := stmt.(*ast.IfStmt); ok && condMentionsRecvNil(info, ifs.Cond, recv) {
			return true
		}
		if usesObject(info, stmt, recv) {
			return false
		}
	}
	return false
}

// condMentionsRecvNil looks for `recv == nil` or `recv != nil` anywhere in
// the condition (covering compound guards like `if c == nil || n <= 0`).
func condMentionsRecvNil(info *types.Info, cond ast.Expr, recv types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if (isObject(info, be.X, recv) && isNilExpr(info, be.Y)) ||
			(isObject(info, be.Y, recv) && isNilExpr(info, be.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// delegates reports whether the body is exactly one statement whose
// expression is a call chain rooted at a method call on recv, like
// `c.Add(1)` or `return o.Registry().Counter(name)`. Such methods inherit
// nil-safety from the method they call.
func delegates(info *types.Info, stmts []ast.Stmt, recv types.Object) bool {
	if len(stmts) != 1 {
		return false
	}
	var expr ast.Expr
	switch s := stmts[0].(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		expr = s.Results[0]
	default:
		return false
	}
	for {
		call, ok := expr.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			return isObject(info, x, recv)
		case *ast.CallExpr:
			expr = x
		default:
			return false
		}
	}
}

func isObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	if _, isNil := info.Uses[id].(*types.Nil); isNil {
		return true
	}
	return false
}

func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
