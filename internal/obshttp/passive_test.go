package obshttp

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"rpol/internal/fsio"
	"rpol/internal/obs"
	"rpol/internal/pool"
	"rpol/internal/rpol"
)

// TestServeIsPassive is the acceptance criterion for the exposition layer:
// a seeded run scraped by a live consumer — hammering /delta and /events
// while epochs are in flight — must produce byte-identical protocol results
// to the same run with no server at all, while the streams carry non-empty,
// monotonically sequenced data.
func TestServeIsPassive(t *testing.T) {
	cfg := pool.Config{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpol.SchemeV2,
		NumWorkers:    5,
		StepsPerEpoch: 10,
		Samples:       2,
		Seed:          321,
		Adv1Fraction:  0.25, // one replay attacker, so rejection events flow too
	}
	const epochs = 2

	run := func(cfg pool.Config) ([]*pool.EpochStats, uint64) {
		t.Helper()
		p, err := pool.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats := make([]*pool.EpochStats, epochs)
		for i := range stats {
			if stats[i], err = p.RunEpoch(); err != nil {
				t.Fatal(err)
			}
		}
		return stats, fsio.Checksum(p.Manager().Global().Encode())
	}

	plain, plainDigest := run(cfg)

	// Same run, now observed: registry + event log + HTTP server + a
	// scraper goroutine tailing /delta and /events throughout.
	observed := cfg
	reg := obs.NewRegistry()
	observed.Obs = obs.NewObserver(reg, nil)
	events := obs.NewEvents(1024, nil)
	events.Observe(reg)
	observed.Obs.AttachEvents(events)
	srv, err := Serve("localhost:0", Config{Observer: observed.Obs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Shutdown(time.Second) }()

	var (
		wg          sync.WaitGroup
		stop        = make(chan struct{})
		mu          sync.Mutex
		deltaPolls  int
		sawCounters bool
		eventSeqs   []uint64
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var metricsSince, eventsSince uint64
		for {
			var d obs.Delta
			getJSON(t, "http://"+srv.Addr+"/delta?since="+utoa(metricsSince), &d)
			metricsSince = d.Seq
			var er eventsResponse
			getJSON(t, "http://"+srv.Addr+"/events?since="+utoa(eventsSince), &er)
			eventsSince = er.Latest
			mu.Lock()
			deltaPolls++
			if len(d.Counters) > 0 {
				sawCounters = true
			}
			for _, ev := range er.Events {
				eventSeqs = append(eventSeqs, ev.Seq)
			}
			mu.Unlock()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	traced, tracedDigest := run(observed)
	close(stop)
	wg.Wait()

	// Protocol results must be identical to the unobserved run.
	if plainDigest != tracedDigest {
		t.Fatalf("global digest diverged under scraping: %x vs %x", plainDigest, tracedDigest)
	}
	for i := range plain {
		a, b := plain[i], traced[i]
		if a.Epoch != b.Epoch || a.TestAccuracy != b.TestAccuracy ||
			a.Accepted != b.Accepted || a.Rejected != b.Rejected ||
			a.DetectedAdversaries != b.DetectedAdversaries ||
			a.MissedAdversaries != b.MissedAdversaries ||
			a.FalseRejections != b.FalseRejections ||
			a.VerifyCommBytes != b.VerifyCommBytes ||
			a.ReexecSteps != b.ReexecSteps {
			t.Errorf("epoch %d diverged under scraping\nplain:  %+v\nscraped: %+v", i, a, b)
		}
	}

	// And the streams must have actually carried the run.
	if deltaPolls == 0 || !sawCounters {
		t.Errorf("scraper made %d polls, sawCounters=%v", deltaPolls, sawCounters)
	}
	if len(eventSeqs) == 0 {
		t.Fatal("no events streamed during the run")
	}
	for i := 1; i < len(eventSeqs); i++ {
		if eventSeqs[i] <= eventSeqs[i-1] {
			t.Fatalf("event seqs not monotonic: %d then %d", eventSeqs[i-1], eventSeqs[i])
		}
	}
	// The run's load-bearing kinds reached the log: one seal per epoch and
	// the adversary's rejections.
	seal, ok := events.Last(obs.EventEpochSealed)
	if !ok || seal.Epoch != epochs-1 {
		t.Errorf("last seal = %+v, %v", seal, ok)
	}
	if _, ok := events.Last(obs.EventVerdictRejected); !ok {
		t.Error("no verdict_rejected event despite an adversary")
	}
	if _, ok := events.Last(obs.EventVerdictAccepted); !ok {
		t.Error("no verdict_accepted event")
	}
}

func utoa(v uint64) string { return strconv.FormatUint(v, 10) }
