// Package obshttp exposes a running pool's observability plane over HTTP:
// the live counterpart of the end-of-run dumps internal/obs renders. It
// serves the registry as text or JSON (/metrics), sequence-numbered full
// snapshots (/snapshot), increments between captures (/delta?since=seq),
// the ring-buffered event tail (/events?since=seq), and a protocol
// liveness probe (/healthz) keyed to the age of the last sealed epoch
// under the logical clock.
//
// The exposition is strictly passive: handlers only read the registry and
// the event ring under their own short locks, so a scraper — or a stalled
// one — can never change protocol results. A seeded run produces identical
// EpochStats and global-model digests with and without a live consumer
// attached (proven by TestServeIsPassive).
package obshttp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"rpol/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// Observer supplies the registry and event log to expose. A nil
	// observer (or missing pieces) serves empty data rather than failing:
	// an operator probing a pool with observability disabled gets valid,
	// empty responses.
	Observer *obs.Observer
	// MaxSealAge is the /healthz liveness threshold: the pool is unhealthy
	// when the last epoch_sealed event (or the server's start, before the
	// first seal) is older than this under the event log's clock. Zero
	// disables the check — /healthz then always reports healthy and only
	// carries the age for operators to judge.
	MaxSealAge time.Duration
	// History bounds the retained delta captures (0 = default 64).
	History int
}

// Server is the observability HTTP surface. Create with NewServer, mount
// via Handler, or bind a listener with Serve.
type Server struct {
	obs     *obs.Observer
	stream  *obs.MetricsStream
	maxAge  time.Duration
	startTS int64
}

// NewServer builds the exposition surface over cfg.Observer.
func NewServer(cfg Config) *Server {
	o := cfg.Observer
	s := &Server{
		obs:    o,
		stream: obs.NewMetricsStream(o.Registry(), cfg.History),
		maxAge: cfg.MaxSealAge,
	}
	if clock := o.Events().Clock(); clock != nil {
		// Anchor liveness before the first seal at the server's start.
		s.startTS = clock.Now()
	}
	return s
}

// Handler returns the route mux: /metrics, /snapshot, /delta, /events,
// /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/delta", s.handleDelta)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleMetrics serves the registry in the text exposition format, or as
// the snapshot's JSON with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.obs.Registry().Snapshot()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, snap)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = snap.WriteText(w)
}

// snapshotResponse is the /snapshot payload.
type snapshotResponse struct {
	Seq      uint64       `json:"seq"`
	Snapshot obs.Snapshot `json:"snapshot"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	seq, snap := s.stream.Capture()
	writeJSON(w, snapshotResponse{Seq: seq, Snapshot: snap})
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	since, ok := sinceParam(w, r)
	if !ok {
		return
	}
	writeJSON(w, s.stream.DeltaSince(since))
}

// eventsResponse is the /events payload: the retained tail after Since,
// the newest sequence number (pass it back as the next ?since), and how
// many requested events had already been overwritten.
type eventsResponse struct {
	Since   uint64            `json:"since"`
	Latest  uint64            `json:"latest"`
	Dropped uint64            `json:"dropped"`
	Events  []obs.StreamEvent `json:"events"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	since, ok := sinceParam(w, r)
	if !ok {
		return
	}
	evs, latest, dropped := s.obs.Events().Since(since)
	if evs == nil {
		evs = []obs.StreamEvent{}
	}
	writeJSON(w, eventsResponse{Since: since, Latest: latest, Dropped: dropped, Events: evs})
}

// HealthResponse is the /healthz payload. Exported so rpoltop and tests
// decode the same shape the handler encodes.
type HealthResponse struct {
	Healthy bool `json:"healthy"`
	// Epochs is the last sealed epoch number + 1 (0 before the first seal).
	Epochs int64 `json:"epochs"`
	// LastSealTS and Now are logical-clock readings; AgeNS their distance.
	// Before the first seal, LastSealTS is the server's start reading.
	LastSealTS int64 `json:"lastSealTs"`
	Now        int64 `json:"now"`
	AgeNS      int64 `json:"ageNs"`
	// MaxAgeNS echoes the configured threshold (0 = liveness not enforced).
	MaxAgeNS int64 `json:"maxAgeNs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := HealthResponse{Healthy: true, LastSealTS: s.startTS, MaxAgeNS: int64(s.maxAge)}
	events := s.obs.Events()
	if seal, ok := events.Last(obs.EventEpochSealed); ok {
		resp.LastSealTS = seal.TS
		resp.Epochs = seal.Epoch + 1
	}
	if clock := events.Clock(); clock != nil {
		resp.Now = clock.Now()
		resp.AgeNS = resp.Now - resp.LastSealTS
	}
	if s.maxAge > 0 && resp.AgeNS > int64(s.maxAge) {
		resp.Healthy = false
	}
	if !resp.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
		// WriteHeader must precede the body; writeJSON only sets the
		// content type header, which is allowed after.
	}
	writeJSON(w, resp)
}

// sinceParam parses ?since=N (default 0), rejecting malformed values.
func sinceParam(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return 0, true
	}
	since, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad since %q: %v", raw, err), http.StatusBadRequest)
		return 0, false
	}
	return since, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Running is a bound, serving exposition endpoint.
type Running struct {
	// Addr is the actual listen address (resolves ":0" ports).
	Addr string
	srv  *http.Server
}

// Serve binds addr and serves the exposition surface in a background
// goroutine. The returned Running's Shutdown must be called to release the
// listener.
func Serve(addr string, cfg Config) (*Running, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: %w", err)
	}
	srv := &http.Server{Handler: NewServer(cfg).Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener died under us; nothing to do but let scrapes fail.
			_ = err
		}
	}()
	return &Running{Addr: ln.Addr().String(), srv: srv}, nil
}

// Shutdown gracefully stops the server, waiting at most timeout for
// in-flight scrapes, then force-closes. Safe to call more than once.
func (r *Running) Shutdown(timeout time.Duration) error {
	if r == nil || r.srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := r.srv.Shutdown(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		return r.srv.Close()
	}
	return err
}
