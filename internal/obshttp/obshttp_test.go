package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rpol/internal/obs"
)

// newTestObserver builds an observer with a registry, an event log on a
// shared SimClock, and returns both.
func newTestObserver(capacity int) (*obs.Observer, *obs.SimClock) {
	clock := obs.NewSimClock(0)
	reg := obs.NewRegistry()
	o := obs.NewObserver(reg, nil)
	ev := obs.NewEvents(capacity, clock)
	ev.Observe(reg)
	o.AttachEvents(ev)
	return o, clock
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, body)
		}
	}
	return resp
}

func TestEndpoints(t *testing.T) {
	o, _ := newTestObserver(64)
	o.Counter("rpol_epochs_total").Add(2)
	o.Gauge("pool_test_accuracy").Set(0.75)
	o.Publish(obs.StreamEvent{Kind: obs.EventEpochSealed, Epoch: 0})
	o.Publish(obs.StreamEvent{Kind: obs.EventVerdictRejected, Worker: "adv1-00", Epoch: 0})

	ts := httptest.NewServer(NewServer(Config{Observer: o}).Handler())
	defer ts.Close()

	// /metrics text exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(text), "counter rpol_epochs_total 2") {
		t.Errorf("/metrics text = %q", text)
	}

	// /metrics?format=json.
	var snap obs.Snapshot
	getJSON(t, ts.URL+"/metrics?format=json", &snap)
	if snap.Counters["rpol_epochs_total"] != 2 || snap.Gauges["pool_test_accuracy"] != 0.75 {
		t.Errorf("/metrics json = %+v", snap)
	}

	// /snapshot carries a sequence number.
	var sr snapshotResponse
	getJSON(t, ts.URL+"/snapshot", &sr)
	if sr.Seq == 0 || sr.Snapshot.Counters["rpol_epochs_total"] != 2 {
		t.Errorf("/snapshot = seq %d, %+v", sr.Seq, sr.Snapshot.Counters)
	}

	// /delta against that snapshot: only what changed since.
	o.Counter("rpol_epochs_total").Add(3)
	var d obs.Delta
	getJSON(t, fmt.Sprintf("%s/delta?since=%d", ts.URL, sr.Seq), &d)
	if d.Full || d.Counters["rpol_epochs_total"] != 3 || d.Seq <= sr.Seq {
		t.Errorf("/delta = %+v", d)
	}
	// since=0 degrades to a full state.
	getJSON(t, ts.URL+"/delta?since=0", &d)
	if !d.Full || d.Counters["rpol_epochs_total"] != 5 {
		t.Errorf("full /delta = %+v", d)
	}

	// /events tail and incremental follow-up.
	var er eventsResponse
	getJSON(t, ts.URL+"/events", &er)
	if len(er.Events) != 2 || er.Latest != 2 || er.Dropped != 0 {
		t.Fatalf("/events = %+v", er)
	}
	if er.Events[1].Kind != obs.EventVerdictRejected || er.Events[1].Worker != "adv1-00" {
		t.Errorf("event tail = %+v", er.Events)
	}
	getJSON(t, fmt.Sprintf("%s/events?since=%d", ts.URL, er.Latest), &er)
	if len(er.Events) != 0 {
		t.Errorf("caught-up /events returned %d events", len(er.Events))
	}

	// Malformed since is a 400, not a panic.
	if resp := getJSON(t, ts.URL+"/events?since=banana", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since → %d", resp.StatusCode)
	}

	// /healthz without a threshold is always healthy and reports the age.
	var hr HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &hr); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
	if !hr.Healthy || hr.Epochs != 1 || hr.Now == 0 {
		t.Errorf("/healthz = %+v", hr)
	}
}

// TestHealthzStallFlipsUnhealthy drives the logical clock past the seal-age
// threshold and watches /healthz flip to 503, then recover on the next seal.
func TestHealthzStallFlipsUnhealthy(t *testing.T) {
	o, clock := newTestObserver(64)
	ts := httptest.NewServer(NewServer(Config{Observer: o, MaxSealAge: time.Millisecond}).Handler())
	defer ts.Close()

	o.Publish(obs.StreamEvent{Kind: obs.EventEpochSealed, Epoch: 0})
	var hr HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &hr); resp.StatusCode != http.StatusOK || !hr.Healthy {
		t.Fatalf("fresh seal reported unhealthy: %d %+v", resp.StatusCode, hr)
	}

	// The pool stalls: logical time marches on with no new seal.
	clock.Advance(10 * time.Millisecond)
	if resp := getJSON(t, ts.URL+"/healthz", &hr); resp.StatusCode != http.StatusServiceUnavailable || hr.Healthy {
		t.Fatalf("stalled pool reported healthy: %d %+v", resp.StatusCode, hr)
	}
	if hr.AgeNS <= int64(time.Millisecond) {
		t.Errorf("stalled age = %dns", hr.AgeNS)
	}

	// The next seal recovers liveness.
	o.Publish(obs.StreamEvent{Kind: obs.EventEpochSealed, Epoch: 1})
	if resp := getJSON(t, ts.URL+"/healthz", &hr); resp.StatusCode != http.StatusOK || !hr.Healthy || hr.Epochs != 2 {
		t.Fatalf("recovered pool reported unhealthy: %d %+v", resp.StatusCode, hr)
	}
}

// TestNilObserverServesEmpty probes every endpoint with observability
// fully disabled: valid empty responses, no panics.
func TestNilObserverServesEmpty(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	var sr snapshotResponse
	getJSON(t, ts.URL+"/snapshot", &sr)
	if !sr.Snapshot.Empty() {
		t.Errorf("nil observer snapshot = %+v", sr.Snapshot)
	}
	var er eventsResponse
	getJSON(t, ts.URL+"/events", &er)
	if len(er.Events) != 0 {
		t.Errorf("nil observer events = %+v", er)
	}
	var hr HealthResponse
	if resp := getJSON(t, ts.URL+"/healthz", &hr); resp.StatusCode != http.StatusOK {
		t.Errorf("nil observer healthz status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/metrics?format=json", &obs.Snapshot{})
	getJSON(t, ts.URL+"/delta", &obs.Delta{})
}

// TestServeShutdownReleasesListener binds a real listener and proves
// Shutdown tears it down: the next request must fail to connect.
func TestServeShutdownReleasesListener(t *testing.T) {
	o, _ := newTestObserver(64)
	run, err := Serve("localhost:0", Config{Observer: o})
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if resp := getJSON(t, "http://"+run.Addr+"/healthz", &hr); resp.StatusCode != http.StatusOK {
		t.Fatalf("serving endpoint returned %d", resp.StatusCode)
	}
	if err := run.Shutdown(time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + run.Addr + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
	if err := run.Shutdown(time.Second); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}
