package economics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperSoundnessNumbers(t *testing.T) {
	// Sec. VI: with Pr_err = 1% and Pr_lsh(β) = 5%, we need 3 samples for
	// h_A = 10% and 47 for h_A = 90%.
	q, err := SamplesForSoundness(0.01, 0.10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Errorf("q(h=10%%) = %d, want 3", q)
	}
	q, err = SamplesForSoundness(0.01, 0.90, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if q != 47 {
		t.Errorf("q(h=90%%) = %d, want 47", q)
	}
}

func TestPaperEconomicNumbers(t *testing.T) {
	// Sec. VI Theorem 3 example: C_train = 0.88, C_spoof = 0 is undefined in
	// Eq. (11) for h_A = 0, but for h = 10% we need 2 samples and for
	// h = 90% we need 3.
	q, err := SamplesForNegativeGain(0.10, 0.88, 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2 {
		t.Errorf("economic q(h=10%%) = %d, want 2", q)
	}
	q, err = SamplesForNegativeGain(0.90, 0.88, 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if q != 3 {
		t.Errorf("economic q(h=90%%) = %d, want 3", q)
	}
}

func TestPaperQ3SoundnessError(t *testing.T) {
	// Sec. VI: with q = 3 and h_A = 90% the soundness error is ≈ 74.12%.
	got, err := SoundnessError(0.90, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.7412) > 0.001 {
		t.Errorf("soundness error = %v, want ≈ 0.7412", got)
	}
}

func TestPassProbabilityValidation(t *testing.T) {
	if _, err := PassProbability(-0.1, 0.05); !errors.Is(err, ErrBadHonesty) {
		t.Errorf("err = %v", err)
	}
	if _, err := PassProbability(0.5, 1.5); !errors.Is(err, ErrBadProb) {
		t.Errorf("err = %v", err)
	}
	p, err := PassProbability(0.5, 0.1)
	if err != nil || math.Abs(p-0.55) > 1e-12 {
		t.Errorf("p = %v, %v", p, err)
	}
}

func TestSoundnessErrorEdge(t *testing.T) {
	if _, err := SoundnessError(0.5, 0.05, -1); err == nil {
		t.Error("want error for negative q")
	}
	one, err := SoundnessError(0.5, 0.05, 0)
	if err != nil || one != 1 {
		t.Errorf("q=0: %v, %v", one, err)
	}
}

func TestSamplesForSoundnessEdge(t *testing.T) {
	if _, err := SamplesForSoundness(0, 0.5, 0.05); !errors.Is(err, ErrBadProb) {
		t.Errorf("err = %v", err)
	}
	if _, err := SamplesForSoundness(1, 0.5, 0.05); !errors.Is(err, ErrBadProb) {
		t.Errorf("err = %v", err)
	}
	// Fully honest "attacker" always passes — sampling can't help.
	if _, err := SamplesForSoundness(0.01, 1.0, 0.05); !errors.Is(err, ErrNoEvasion) {
		t.Errorf("err = %v", err)
	}
	// Fully dishonest with Pr_lsh(β)=0 is caught by a single sample.
	q, err := SamplesForSoundness(0.01, 0, 0)
	if err != nil || q != 1 {
		t.Errorf("q = %d, %v", q, err)
	}
}

func TestAttackerGainDecreasesWithSamples(t *testing.T) {
	base := GainParams{
		HonestyRatio: 0.1, CTrain: 0.88, CSpoof: 0.01, CT: 0.02,
		PrLshAlpha: 0.95, PrLshBeta: 0.05,
	}
	prev := math.Inf(1)
	for q := 0; q <= 6; q++ {
		p := base
		p.Samples = q
		g, err := AttackerGain(p)
		if err != nil {
			t.Fatal(err)
		}
		if g >= prev {
			t.Errorf("gain not decreasing at q=%d: %v ≥ %v", q, g, prev)
		}
		prev = g
	}
}

func TestAttackerGainNegativeAtPaperQ(t *testing.T) {
	// With the paper's parameters and q from Eq. (11), the attacker's gain
	// must be non-positive.
	for _, h := range []float64{0.1, 0.5, 0.9} {
		q, err := SamplesForNegativeGain(h, 0.88, 0, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		g, err := AttackerGain(GainParams{
			HonestyRatio: h, CTrain: 0.88, CSpoof: 0, CT: 0,
			PrLshAlpha: 0.95, PrLshBeta: 0.05, Samples: q,
		})
		if err != nil {
			t.Fatal(err)
		}
		if g > 1e-9 {
			t.Errorf("h=%v q=%d: gain %v > 0", h, q, g)
		}
	}
}

func TestHonestWorkerGainPositive(t *testing.T) {
	// An honest worker (h=1) always passes, so its "gain" is the reward
	// minus the training cost — positive when C_train < 1. This is the
	// incentive asymmetry RPoL creates.
	g, err := AttackerGain(GainParams{
		HonestyRatio: 1, CTrain: 0.88, CT: 0,
		PrLshAlpha: 1, PrLshBeta: 0.05, Samples: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g <= 0 {
		t.Errorf("honest gain = %v, want > 0", g)
	}
}

func TestSamplesForNegativeGainEdges(t *testing.T) {
	if _, err := SamplesForNegativeGain(0.5, 0, 0, 0.05); err == nil {
		t.Error("want error for zero attack cost")
	}
	// Attack cost above the reward ⇒ one sample suffices.
	q, err := SamplesForNegativeGain(1.0, 1.2, 0.1, 0.0)
	if err != nil && !errors.Is(err, ErrNoEvasion) {
		t.Fatal(err)
	}
	if err == nil && q != 1 {
		t.Errorf("q = %d, want 1", q)
	}
	if _, err := SamplesForNegativeGain(1.0, 0.5, 0, 0.05); !errors.Is(err, ErrNoEvasion) {
		t.Errorf("err = %v", err)
	}
}

func TestAttackerGainValidation(t *testing.T) {
	if _, err := AttackerGain(GainParams{HonestyRatio: -1}); !errors.Is(err, ErrBadHonesty) {
		t.Errorf("err = %v", err)
	}
	if _, err := AttackerGain(GainParams{HonestyRatio: 0.5, PrLshAlpha: 2}); !errors.Is(err, ErrBadProb) {
		t.Errorf("err = %v", err)
	}
	if _, err := AttackerGain(GainParams{HonestyRatio: 0.5, Samples: -1}); err == nil {
		t.Error("want error for negative samples")
	}
}

func TestCapitalCost(t *testing.T) {
	p := DefaultPricing()
	// 1 hour GPU + 1 GB WAN + 100 GB·month storage.
	u := Usage{GPUTime: time.Hour, CommBytes: 1e9, StorageBytes: 100e9}
	got := CapitalCost(u, p)
	want := 1.33 + 0.12 + 5.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	// Storage billed for half a month.
	u.StorageMonths = 0.5
	got = CapitalCost(u, p)
	want = 1.33 + 0.12 + 2.5
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", got, want)
	}
	if CapitalCost(Usage{}, p) != 0 {
		t.Error("zero usage must cost zero")
	}
}

// Property: soundness error is monotone decreasing in q and increasing in
// honesty ratio.
func TestSoundnessMonotonicity(t *testing.T) {
	f := func(hRaw, bRaw uint8, qRaw uint8) bool {
		h := float64(hRaw%100) / 100
		b := float64(bRaw%50) / 100
		q := int(qRaw%20) + 1
		e1, err1 := SoundnessError(h, b, q)
		e2, err2 := SoundnessError(h, b, q+1)
		if err1 != nil || err2 != nil {
			return false
		}
		return e2 <= e1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
