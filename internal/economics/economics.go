// Package economics implements the paper's security-economics analysis
// (Sec. VI): the soundness error of sampling-based verification (Theorem 2,
// Eq. 8), the attacker's expected net gain and the economically sufficient
// sample count (Theorem 3, Eq. 9–11), and the capital-cost model behind
// Table III (Alibaba-cloud prices for GPU time, WAN traffic, and storage).
package economics

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Errors for invalid analysis inputs.
var (
	ErrBadHonesty = errors.New("economics: honesty ratio must be in [0, 1]")
	ErrBadProb    = errors.New("economics: probability must be in (0, 1)")
	ErrNoEvasion  = errors.New("economics: per-sample pass probability is 1; sampling cannot help")
)

// PassProbability returns the probability that an attacker with honesty
// ratio hA passes ONE sampled checkpoint: hA + (1−hA)·Pr_lsh(β).
func PassProbability(hA, prLshBeta float64) (float64, error) {
	if hA < 0 || hA > 1 {
		return 0, fmt.Errorf("hA = %v: %w", hA, ErrBadHonesty)
	}
	if prLshBeta < 0 || prLshBeta > 1 {
		return 0, fmt.Errorf("Pr_lsh(β) = %v: %w", prLshBeta, ErrBadProb)
	}
	return hA + (1-hA)*prLshBeta, nil
}

// SoundnessError returns the evasion probability after q independent
// samples: (hA + (1−hA)·Pr_lsh(β))^q (Theorem 2).
func SoundnessError(hA, prLshBeta float64, q int) (float64, error) {
	p, err := PassProbability(hA, prLshBeta)
	if err != nil {
		return 0, err
	}
	if q < 0 {
		return 0, errors.New("economics: negative sample count")
	}
	return math.Pow(p, float64(q)), nil
}

// SamplesForSoundness returns the minimal q that keeps the soundness error
// at or below prErr (Eq. 8): q ≥ log(Pr_err) / log(hA + (1−hA)·Pr_lsh(β)).
func SamplesForSoundness(prErr, hA, prLshBeta float64) (int, error) {
	if prErr <= 0 || prErr >= 1 {
		return 0, fmt.Errorf("Pr_err = %v: %w", prErr, ErrBadProb)
	}
	p, err := PassProbability(hA, prLshBeta)
	if err != nil {
		return 0, err
	}
	if p >= 1 {
		return 0, ErrNoEvasion
	}
	if p <= 0 {
		return 1, nil
	}
	q := math.Log(prErr) / math.Log(p)
	return int(math.Ceil(q)), nil
}

// GainParams configures the attacker's net-gain analysis of Eq. (9). All
// quantities are in units of one epoch's mining reward.
type GainParams struct {
	HonestyRatio float64 // h_A: fraction of checkpoints honestly trained
	CTrain       float64 // computation cost of one fully honest submission
	CSpoof       float64 // computation cost of the spoofing itself
	CT           float64 // communication cost of one model-weights transfer
	PrLshAlpha   float64 // Pr_lsh(α): honest-result match probability
	PrLshBeta    float64 // Pr_lsh(β): spoofed-result match probability
	Samples      int     // q
}

func (g GainParams) validate() error {
	if g.HonestyRatio < 0 || g.HonestyRatio > 1 {
		return ErrBadHonesty
	}
	if g.PrLshAlpha < 0 || g.PrLshAlpha > 1 || g.PrLshBeta < 0 || g.PrLshBeta > 1 {
		return ErrBadProb
	}
	if g.Samples < 0 {
		return errors.New("economics: negative sample count")
	}
	return nil
}

// AttackerGain returns the upper bound on the attacker's expected net gain
// G_A for one submission (Eq. 9): the reward weighted by the evasion
// probability, minus training, spoofing, and communication costs (including
// double-check traffic).
func AttackerGain(g GainParams) (float64, error) {
	if err := g.validate(); err != nil {
		return 0, err
	}
	pPass, err := SoundnessError(g.HonestyRatio, g.PrLshBeta, g.Samples)
	if err != nil {
		return 0, err
	}
	q := float64(g.Samples)
	doubleCheck := q * g.CT * (g.HonestyRatio*(1-g.PrLshAlpha) + (1-g.HonestyRatio)*(1-g.PrLshBeta))
	cost := g.HonestyRatio*g.CTrain + g.CSpoof + q*g.CT + doubleCheck
	return pPass - cost, nil
}

// SamplesForNegativeGain returns the minimal q that drives the attacker's
// maximum net gain non-positive (Eq. 11):
//
//	q ≥ log(hA·C_train + C_spoof) / log(hA + (1−hA)·Pr_lsh(β)).
//
// Following the theorem's derivation, the communication cost is set to its
// gain-maximizing value C_t = 0.
func SamplesForNegativeGain(hA, cTrain, cSpoof, prLshBeta float64) (int, error) {
	p, err := PassProbability(hA, prLshBeta)
	if err != nil {
		return 0, err
	}
	if p >= 1 {
		return 0, ErrNoEvasion
	}
	budget := hA*cTrain + cSpoof
	if budget <= 0 {
		// Attacking is free; no finite q makes the bound negative, but any
		// q ≥ 1 at least bounds the reward by the soundness error.
		return 0, errors.New("economics: attack cost is zero; Eq. (11) undefined")
	}
	if budget >= 1 {
		// Attacking already costs more than the reward; one sample suffices.
		return 1, nil
	}
	q := math.Log(budget) / math.Log(p)
	n := int(math.Ceil(q))
	if n < 1 {
		n = 1
	}
	return n, nil
}

// Pricing is the cloud price card used by Table III (Alibaba cloud,
// Sec. VII-E): GPU $1.33/h (GA10), WAN $0.12/GB, storage $5/100 GB·month.
type Pricing struct {
	GPUPerHour        float64
	WANPerGB          float64
	StoragePerGBMonth float64
}

// DefaultPricing returns the paper's price card.
func DefaultPricing() Pricing {
	return Pricing{GPUPerHour: 1.33, WANPerGB: 0.12, StoragePerGBMonth: 0.05}
}

// Usage is one configuration's resource consumption for a billing period.
type Usage struct {
	GPUTime      time.Duration // total accelerator time across all parties
	CommBytes    int64         // total WAN traffic
	StorageBytes int64         // peak storage held for the period
	// StorageMonths scales the storage bill; Table III bills one epoch's
	// artifacts for a nominal period (default 1 month when zero).
	StorageMonths float64
}

// CapitalCost returns the dollar cost of the usage under the price card.
func CapitalCost(u Usage, p Pricing) float64 {
	months := u.StorageMonths
	if months == 0 {
		months = 1
	}
	const gb = 1e9
	cost := u.GPUTime.Hours()*p.GPUPerHour +
		float64(u.CommBytes)/gb*p.WANPerGB +
		float64(u.StorageBytes)/gb*p.StoragePerGBMonth*months
	return cost
}
