// Package tracefile defines a portable on-disk format for worker training
// traces, so that a proof of learning can be recorded by one process and
// verified by another (the cmd/rpolverify workflow). A trace file carries
// everything the verification needs to be self-contained: the task identity
// and seed (from which the verifier reconstructs the architecture and the
// shard deterministically), the epoch parameters, and the raw checkpoint
// snapshots.
package tracefile

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"rpol/internal/fsio"
	"rpol/internal/prf"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// FormatVersion identifies the trace-file schema.
const FormatVersion = 1

// Params mirrors rpol.TaskParams in a serialization-friendly shape.
type Params struct {
	Epoch           int     `json:"epoch"`
	Steps           int     `json:"steps"`
	CheckpointEvery int     `json:"checkpointEvery"`
	BatchSize       int     `json:"batchSize"`
	LR              float64 `json:"lr"`
	Optimizer       string  `json:"optimizer"`
	Nonce           uint64  `json:"nonce"`
}

// File is the on-disk trace.
type File struct {
	Version  int    `json:"version"`
	Task     string `json:"task"`
	Seed     int64  `json:"seed"`
	WorkerID string `json:"workerId"`
	GPU      string `json:"gpu"`
	Params   Params `json:"params"`
	// Checkpoints are the base64-encoded binary snapshots (tensor.Encode).
	Checkpoints []string `json:"checkpoints"`
	// StepsAt are the training steps of each snapshot.
	StepsAt []int `json:"stepsAt"`
}

// Errors returned by trace-file operations.
var (
	ErrBadVersion = errors.New("tracefile: unsupported version")
	ErrCorrupt    = errors.New("tracefile: corrupt trace")
)

// FromTrace builds a File from a recorded trace.
func FromTrace(task string, seed int64, workerID, gpuName string, p rpol.TaskParams, trace *rpol.Trace) (*File, error) {
	if trace == nil || len(trace.Checkpoints) == 0 {
		return nil, fmt.Errorf("empty trace: %w", ErrCorrupt)
	}
	if len(trace.Checkpoints) != len(trace.Steps) {
		return nil, fmt.Errorf("checkpoints %d vs steps %d: %w",
			len(trace.Checkpoints), len(trace.Steps), ErrCorrupt)
	}
	f := &File{
		Version:  FormatVersion,
		Task:     task,
		Seed:     seed,
		WorkerID: workerID,
		GPU:      gpuName,
		Params: Params{
			Epoch:           p.Epoch,
			Steps:           p.Steps,
			CheckpointEvery: p.CheckpointEvery,
			BatchSize:       p.Hyper.BatchSize,
			LR:              p.Hyper.LR,
			Optimizer:       p.Hyper.Optimizer,
			Nonce:           uint64(p.Nonce),
		},
		StepsAt: append([]int(nil), trace.Steps...),
	}
	var buf []byte
	for _, w := range trace.Checkpoints {
		buf = w.AppendEncode(buf[:0])
		f.Checkpoints = append(f.Checkpoints, base64.StdEncoding.EncodeToString(buf))
	}
	return f, nil
}

// TaskParams reconstructs the epoch parameters. The global model is the
// first checkpoint.
func (f *File) TaskParams() (rpol.TaskParams, error) {
	trace, err := f.Trace()
	if err != nil {
		return rpol.TaskParams{}, err
	}
	p := rpol.TaskParams{
		Epoch:           f.Params.Epoch,
		Global:          trace.Checkpoints[0],
		Hyper:           rpol.Hyper{Optimizer: f.Params.Optimizer, LR: f.Params.LR, BatchSize: f.Params.BatchSize},
		Nonce:           prf.Nonce(f.Params.Nonce),
		Steps:           f.Params.Steps,
		CheckpointEvery: f.Params.CheckpointEvery,
	}
	if err := p.Validate(); err != nil {
		return rpol.TaskParams{}, fmt.Errorf("tracefile: %w", err)
	}
	return p, nil
}

// Trace decodes the checkpoint snapshots.
func (f *File) Trace() (*rpol.Trace, error) {
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("version %d: %w", f.Version, ErrBadVersion)
	}
	if len(f.Checkpoints) == 0 || len(f.Checkpoints) != len(f.StepsAt) {
		return nil, fmt.Errorf("checkpoints %d vs steps %d: %w",
			len(f.Checkpoints), len(f.StepsAt), ErrCorrupt)
	}
	trace := &rpol.Trace{Steps: append([]int(nil), f.StepsAt...)}
	for i, enc := range f.Checkpoints {
		raw, err := base64.StdEncoding.DecodeString(enc)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i, ErrCorrupt)
		}
		w, err := tensor.DecodeVector(raw)
		if err != nil {
			return nil, fmt.Errorf("checkpoint %d: %w", i, err)
		}
		trace.Checkpoints = append(trace.Checkpoints, w)
	}
	return trace, nil
}

// Write serializes the trace file to path as a checksummed fsio frame,
// atomically: a crash mid-write leaves the previous trace (or nothing)
// rather than a torn file a verifier would choke on.
func (f *File) Write(path string) error {
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("tracefile write: %w", err)
	}
	if err := fsio.WriteFileAtomic(path, fsio.EncodeFile(data)); err != nil {
		return fmt.Errorf("tracefile write: %w", err)
	}
	return nil
}

// Read parses a trace file from path. Checksum failures surface as
// ErrCorrupt; files written before the framed format (raw JSON) still load.
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tracefile read: %w", err)
	}
	payload, _, err := fsio.DecodeFile(data)
	if err != nil {
		return nil, fmt.Errorf("tracefile read: %v: %w", err, ErrCorrupt)
	}
	var f File
	if err := json.Unmarshal(payload, &f); err != nil {
		return nil, fmt.Errorf("tracefile parse: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("version %d: %w", f.Version, ErrBadVersion)
	}
	return &f, nil
}
