package tracefile

import (
	"errors"
	"path/filepath"
	"testing"

	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

func sampleTrace() (*rpol.Trace, rpol.TaskParams) {
	trace := &rpol.Trace{
		Checkpoints: []tensor.Vector{{1, 2, 3}, {1.5, 2.5, 3.5}, {2, 3, 4}},
		Steps:       []int{0, 5, 10},
	}
	p := rpol.TaskParams{
		Epoch:           2,
		Global:          trace.Checkpoints[0],
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: 8},
		Nonce:           12345,
		Steps:           10,
		CheckpointEvery: 5,
	}
	return trace, p
}

func TestRoundTrip(t *testing.T) {
	trace, p := sampleTrace()
	f, err := FromTrace("resnet18-cifar10", 7, "w1", "GA10", p, trace)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != "resnet18-cifar10" || got.WorkerID != "w1" || got.GPU != "GA10" || got.Seed != 7 {
		t.Errorf("metadata lost: %+v", got)
	}
	gotTrace, err := got.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotTrace.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %d", len(gotTrace.Checkpoints))
	}
	for i := range trace.Checkpoints {
		if !gotTrace.Checkpoints[i].Equal(trace.Checkpoints[i], 0) {
			t.Errorf("checkpoint %d changed", i)
		}
		if gotTrace.Steps[i] != trace.Steps[i] {
			t.Errorf("step %d changed", i)
		}
	}
	gotParams, err := got.TaskParams()
	if err != nil {
		t.Fatal(err)
	}
	if gotParams.Nonce != p.Nonce || gotParams.Steps != p.Steps ||
		gotParams.Hyper != p.Hyper || gotParams.Epoch != p.Epoch {
		t.Errorf("params changed: %+v", gotParams)
	}
	if !gotParams.Global.Equal(p.Global, 0) {
		t.Error("global weights changed")
	}
}

func TestFromTraceValidation(t *testing.T) {
	_, p := sampleTrace()
	if _, err := FromTrace("t", 1, "w", "g", p, nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil trace: err = %v", err)
	}
	bad := &rpol.Trace{Checkpoints: []tensor.Vector{{1}}, Steps: []int{0, 5}}
	if _, err := FromTrace("t", 1, "w", "g", p, bad); !errors.Is(err, ErrCorrupt) {
		t.Errorf("ragged trace: err = %v", err)
	}
}

func TestVersionCheck(t *testing.T) {
	trace, p := sampleTrace()
	f, err := FromTrace("t", 1, "w", "g", p, trace)
	if err != nil {
		t.Fatal(err)
	}
	f.Version = 99
	if _, err := f.Trace(); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v", err)
	}
	path := filepath.Join(t.TempDir(), "v99.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); !errors.Is(err, ErrBadVersion) {
		t.Errorf("Read err = %v", err)
	}
}

func TestCorruptCheckpoints(t *testing.T) {
	trace, p := sampleTrace()
	f, err := FromTrace("t", 1, "w", "g", p, trace)
	if err != nil {
		t.Fatal(err)
	}
	f.Checkpoints[1] = "!!!not-base64!!!"
	if _, err := f.Trace(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v", err)
	}
	f.Checkpoints[1] = "AAAA" // valid base64, invalid vector encoding
	if _, err := f.Trace(); err == nil {
		t.Error("want error for invalid vector bytes")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("want error for missing file")
	}
}

func TestReadGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := (&File{Version: FormatVersion}).Write(path); err != nil {
		t.Fatal(err)
	}
	f, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Trace(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty trace: err = %v", err)
	}
}
