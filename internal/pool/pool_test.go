package pool

import (
	"crypto/sha256"
	"strings"
	"testing"

	"rpol/internal/rpol"
)

func baseConfig(scheme rpol.Scheme) Config {
	return Config{
		TaskName:      "resnet18-cifar10",
		Scheme:        scheme,
		NumWorkers:    5,
		StepsPerEpoch: 10,
		Samples:       2, // all intervals sampled (10 steps / 5 = 2)
		Seed:          321,
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig(rpol.SchemeV1)
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.TaskName = ""
	if err := bad.Validate(); err == nil {
		t.Error("missing task accepted")
	}
	bad = good
	bad.NumWorkers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero workers accepted")
	}
	bad = good
	bad.Adv1Fraction = 0.7
	bad.Adv2Fraction = 0.7
	if err := bad.Validate(); err == nil {
		t.Error("adversary fractions > 1 accepted")
	}
}

func TestHonestPoolAllAccepted(t *testing.T) {
	p, err := New(baseConfig(rpol.SchemeV2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 0 || stats.FalseRejections != 0 {
		t.Errorf("honest pool saw rejections: %+v", stats)
	}
	if stats.Accepted != 5 {
		t.Errorf("accepted = %d", stats.Accepted)
	}
	if stats.Calibration == nil {
		t.Error("v2 epoch must carry a calibration")
	}
}

func TestAdversariesDetected(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV2)
	cfg.NumWorkers = 6
	cfg.Adv1Fraction = 0.34 // 2 replay attackers
	cfg.Adv2Fraction = 0.34 // 2 spoofers
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	roles := p.Roles()
	nAdv := 0
	for _, r := range roles {
		if r != RoleHonest {
			nAdv++
		}
	}
	if nAdv != 4 {
		t.Fatalf("adversaries placed = %d, want 4", nAdv)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DetectedAdversaries != nAdv {
		t.Errorf("detected %d of %d adversaries (missed %d)",
			stats.DetectedAdversaries, nAdv, stats.MissedAdversaries)
	}
	if stats.FalseRejections != 0 {
		t.Errorf("honest workers rejected: %d", stats.FalseRejections)
	}
	// Rewards flow only to honest workers.
	for id, r := range p.Rewards() {
		if !strings.HasPrefix(id, "worker-") && r > 0 {
			t.Errorf("adversary %s earned %v", id, r)
		}
	}
}

func TestBaselineAcceptsAdversaries(t *testing.T) {
	cfg := baseConfig(rpol.SchemeBaseline)
	cfg.Adv1Fraction = 0.4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 0 {
		t.Error("baseline must not reject anyone")
	}
	if stats.MissedAdversaries == 0 {
		t.Error("baseline should be missing the adversaries")
	}
}

func TestVerifiedPoolBeatsBaselineUnderAttack(t *testing.T) {
	// The Fig. 6 headline: with 40 % replay adversaries, the verified pool
	// reaches higher test accuracy than the unverified baseline.
	const epochs = 6
	run := func(scheme rpol.Scheme) float64 {
		cfg := baseConfig(scheme)
		cfg.Adv1Fraction = 0.4
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		history, err := p.RunEpochs(epochs)
		if err != nil {
			t.Fatal(err)
		}
		return history[len(history)-1].TestAccuracy
	}
	baseline := run(rpol.SchemeBaseline)
	verified := run(rpol.SchemeV2)
	if verified <= baseline {
		t.Errorf("RPoLv2 accuracy %v not above baseline %v under attack", verified, baseline)
	}
}

func TestAccuracyImprovesOverEpochs(t *testing.T) {
	p, err := New(baseConfig(rpol.SchemeV1))
	if err != nil {
		t.Fatal(err)
	}
	history, err := p.RunEpochs(5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := history[0].TestAccuracy, history[len(history)-1].TestAccuracy
	if last <= first {
		t.Errorf("accuracy did not improve: %v → %v", first, last)
	}
	if last < 0.5 {
		t.Errorf("final accuracy %v too low", last)
	}
}

func TestAMLayerPool(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV1)
	cfg.UseAMLayer = true
	cfg.ManagerAddress = "deadbeef"
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 0 {
		t.Errorf("AMLayer pool saw rejections: %+v", stats)
	}
	if stats.TestAccuracy <= 1.0/float64(p.Spec().ProxyClasses)+0.05 {
		t.Errorf("AMLayer pool accuracy %v barely above chance", stats.TestAccuracy)
	}
}

func TestRunEpochsValidation(t *testing.T) {
	p, err := New(baseConfig(rpol.SchemeBaseline))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RunEpochs(0); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestNewRejectsUnknownTask(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV1)
	cfg.TaskName = "lenet-mnist"
	if _, err := New(cfg); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestRoleString(t *testing.T) {
	if RoleHonest.String() != "honest" || RoleAdv1.String() != "adv1" ||
		RoleAdv2.String() != "adv2" || Role(0).String() != "unknown" {
		t.Error("role names wrong")
	}
}

func TestDecentralizedVerification(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV2)
	cfg.NumWorkers = 6
	cfg.Adv1Fraction = 0.34
	cfg.Verifiers = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.DetectedAdversaries != 2 {
		t.Errorf("detected = %d, want 2", stats.DetectedAdversaries)
	}
	if stats.FalseRejections != 0 {
		t.Errorf("false rejections = %d", stats.FalseRejections)
	}
	if stats.Accepted != 4 {
		t.Errorf("accepted = %d", stats.Accepted)
	}
}

func TestConvTaskPoolVerifies(t *testing.T) {
	// The protocol must verify bit-consistently with a convolutional
	// architecture too (re-execution through Conv2D layers).
	cfg := baseConfig(rpol.SchemeV2)
	cfg.TaskName = "resnet18-cifar10-conv"
	cfg.NumWorkers = 3
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected != 0 {
		t.Errorf("conv pool saw rejections: %+v", stats)
	}
	if stats.Accepted != 3 {
		t.Errorf("accepted = %d", stats.Accepted)
	}
}

func TestPoolDeterministicGivenSeed(t *testing.T) {
	run := func() (float64, int) {
		cfg := baseConfig(rpol.SchemeV2)
		cfg.Adv2Fraction = 0.2
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var detected int
		var acc float64
		for i := 0; i < 2; i++ {
			stats, err := p.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			detected += stats.DetectedAdversaries
			acc = stats.TestAccuracy
		}
		return acc, detected
	}
	acc1, det1 := run()
	acc2, det2 := run()
	if acc1 != acc2 || det1 != det2 {
		t.Errorf("same seed diverged: (%v, %d) vs (%v, %d)", acc1, det1, acc2, det2)
	}
}

// TestMerkleCommitParity is the acceptance test for the streaming Merkle
// commitment scheme at pool level: a seeded run with adversaries must produce
// bit-identical verdicts, accuracy, and global models whether submissions
// carry the legacy inline hash list or only a 32-byte Merkle root with
// on-demand proof pulls. Only the wire/commitment format — and therefore the
// verification communication bill — may differ.
func TestMerkleCommitParity(t *testing.T) {
	type epochDigest struct {
		Accepted, Rejected, Detected, Missed, FalseRej, Absent int
		Accuracy                                               float64
		Reexec                                                 int
		Global                                                 [sha256.Size]byte
	}
	run := func(merkle bool) ([]epochDigest, int64) {
		cfg := baseConfig(rpol.SchemeV2)
		cfg.Adv2Fraction = 0.2
		cfg.MerkleCommit = merkle
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []epochDigest
		var commBytes int64
		for i := 0; i < 2; i++ {
			s, err := p.RunEpoch()
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, epochDigest{
				Accepted: s.Accepted, Rejected: s.Rejected,
				Detected: s.DetectedAdversaries, Missed: s.MissedAdversaries,
				FalseRej: s.FalseRejections, Absent: s.AbsentWorkers,
				Accuracy: s.TestAccuracy, Reexec: s.ReexecSteps,
				Global: sha256.Sum256(p.Manager().Global().Encode()),
			})
			commBytes += s.VerifyCommBytes
		}
		return out, commBytes
	}
	legacy, legacyBytes := run(false)
	merkle, merkleBytes := run(true)
	for i := range legacy {
		if legacy[i] != merkle[i] {
			t.Errorf("epoch %d diverged:\n  legacy %+v\n  merkle %+v", i, legacy[i], merkle[i])
		}
	}
	if legacy[len(legacy)-1].Rejected == 0 {
		t.Error("adversarial run saw no rejections; parity test lost its teeth")
	}
	if legacyBytes == merkleBytes {
		t.Errorf("comm bytes identical (%d); merkle accounting not in effect", legacyBytes)
	}
}
