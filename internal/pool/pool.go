// Package pool assembles a complete mining pool (Fig. 2): a manager, a mix
// of honest and adversarial workers, shard distribution, per-epoch
// coordination with RPoL verification, reward accounting, and global-model
// evaluation on the held-out test set. The Fig. 6 experiments (model
// accuracy under attack, with and without verification) run on this
// package.
package pool

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"rpol/internal/adversary"
	"rpol/internal/amlayer"
	"rpol/internal/checkpoint"
	"rpol/internal/dataset"
	"rpol/internal/fsio"
	"rpol/internal/gpu"
	"rpol/internal/journal"
	"rpol/internal/modelzoo"
	"rpol/internal/netsim"
	"rpol/internal/nn"
	"rpol/internal/obs"
	"rpol/internal/parallel"
	"rpol/internal/rpol"
	"rpol/internal/tensor"
)

// Config describes one pool instantiation.
type Config struct {
	// TaskName keys into modelzoo (e.g. "resnet18-cifar10").
	TaskName string
	// Scheme selects baseline / RPoLv1 / RPoLv2 verification.
	Scheme rpol.Scheme
	// NumWorkers is the pool size (the paper's prototype uses 10).
	NumWorkers int
	// Adv1Fraction and Adv2Fraction are the shares of workers running the
	// replay attack and the spoofing attack respectively.
	Adv1Fraction float64
	Adv2Fraction float64
	// Adv2HonestFraction is how much Adv2 actually trains (paper: 10 % of
	// steps).
	Adv2HonestFraction float64
	// Lambda is Adv2's spoofing coefficient (Eq. 12).
	Lambda float64
	// StepsPerEpoch, CheckpointEvery, Samples parameterize the protocol.
	// Zero values take the defaults (derived steps, interval 5, q = 3).
	StepsPerEpoch   int
	CheckpointEvery int
	Samples         int
	// MerkleCommit switches submissions to the streaming Merkle commitment:
	// 32-byte roots on the wire, O(log n) proof pulls during verification,
	// bit-identical verdicts (see rpol.ManagerConfig.MerkleCommit).
	MerkleCommit bool
	// ManagerAddress is the pool's blockchain address, encoded in the
	// AMLayer when UseAMLayer is set.
	ManagerAddress string
	UseAMLayer     bool
	// Verifiers > 1 enables decentralized verification: submissions are
	// checked by that many parallel verifiers (Sec. IX future work).
	Verifiers int
	// Workers sizes the deterministic compute pool each participant uses
	// for batch training, commitment hashing, and interval verification —
	// an execution knob, not a protocol parameter: results are bit-identical
	// for any value ≥ 1 (see internal/parallel). 0 falls back to the
	// process-wide default (parallel.DefaultWorkers, set by the -jobs flag),
	// which itself defaults to the historical serial paths; negative forces
	// serial regardless of the process default.
	Workers int
	// Seed makes the whole pool construction and run reproducible.
	Seed int64
	// Faults is an optional deterministic fault plan: its crash-restart
	// schedule knocks workers out for whole epochs (they fail collection
	// with rpol.ErrWorkerUnavailable and are recorded as absent). Nil falls
	// back to the plan derived from FaultSeed, then to the process-wide
	// default installed by the -faultseed flag, then to no faults. Because
	// the plan is a pure function of its seed, two runs with the same
	// (Seed, fault plan) produce identical EpochStats, absences included.
	Faults *netsim.FaultPlan
	// FaultSeed derives a Faults plan with netsim.DefaultFaultConfig when
	// Faults is nil and FaultSeed is non-zero.
	FaultSeed int64
	// Quorum is the minimum number of responsive workers an epoch needs to
	// settle (see rpol.ManagerConfig.Quorum). Zero defaults to 1 when a
	// fault plan is active and to the strict all-must-respond behaviour
	// otherwise; negative forces strict mode even under faults.
	Quorum int
	// Obs routes the pool's metrics and spans (nil falls back to the
	// process-wide default observer, disabled unless a command installed
	// one). Instrumentation does not change protocol results: a seeded run
	// with and without an observer produces identical EpochStats.
	Obs *obs.Observer
	// Journal is a directory for the pool's durability layer: an
	// append-only epoch journal (epoch.wal), a per-epoch state snapshot
	// (state.bin), and one on-disk checkpoint store per honest worker.
	// Empty disables journaling. With a journal, the manager derives its
	// per-epoch randomness from (Seed, epoch) — a seeded journaled run is
	// still fully deterministic, but its sampling stream differs from the
	// same seed without a journal.
	Journal string
	// Resume, with Journal set, recovers the pool's position from the
	// journal instead of starting fresh: sealed epochs are replayed from
	// their seal records (global model, rewards, worker noise streams) and
	// the in-flight epoch restarts from each worker's intact durable
	// checkpoint prefix. The result is bit-identical to the uninterrupted
	// run. An empty or missing journal resumes as a fresh run.
	Resume bool
	// FS is the filesystem the durability layer writes through (nil uses
	// the real one). Crash-recovery tests inject an fsio.FaultFS here.
	FS fsio.FS
}

func (c *Config) applyDefaults() {
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 5
	}
	if c.Samples == 0 {
		c.Samples = 3
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 15
	}
	if c.Adv2HonestFraction == 0 {
		c.Adv2HonestFraction = 0.1
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.ManagerAddress == "" {
		c.ManagerAddress = "pool-manager"
	}
	if c.Workers == 0 {
		c.Workers = parallel.DefaultWorkers()
	}
	if c.Journal != "" {
		if c.Workers <= 0 {
			// Journaled runs pin the deterministic parallel runtime so the
			// verification path is a pure function of (seed, epoch) — the
			// serial fallback threads one stateful device through history.
			c.Workers = 1
		}
		if c.FS == nil {
			c.FS = fsio.OS
		}
	}
	if c.Faults == nil {
		if c.FaultSeed != 0 {
			c.Faults = netsim.NewFaultPlan(c.FaultSeed, netsim.DefaultFaultConfig())
		} else {
			c.Faults = netsim.DefaultFaultPlan()
		}
	}
	switch {
	case c.Quorum < 0:
		c.Quorum = 0 // explicit strict mode
	case c.Quorum == 0 && c.Faults != nil:
		// Faults without a quorum would turn every injected crash into an
		// aborted epoch; settle with whoever responds instead.
		c.Quorum = 1
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.TaskName == "":
		return errors.New("pool: task name required")
	case c.NumWorkers < 1:
		return errors.New("pool: need at least one worker")
	case c.Adv1Fraction < 0 || c.Adv2Fraction < 0 || c.Adv1Fraction+c.Adv2Fraction > 1:
		return errors.New("pool: adversary fractions must be non-negative and sum to ≤ 1")
	// applyDefaults only rewrites exact zeros, so negatives would flow
	// straight into the protocol; reject them here.
	case c.StepsPerEpoch < 0:
		return errors.New("pool: steps per epoch must not be negative")
	case c.CheckpointEvery < 0:
		return errors.New("pool: checkpoint interval must not be negative")
	case c.Samples < 0:
		return errors.New("pool: sample count must not be negative")
	case c.Verifiers < 0:
		return errors.New("pool: verifier count must not be negative")
	case c.Resume && c.Journal == "":
		return errors.New("pool: resume requires a journal directory")
	}
	return nil
}

// Role classifies a pool participant for detection accounting.
type Role int

// Worker roles.
const (
	RoleHonest Role = iota + 1
	RoleAdv1
	RoleAdv2
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleHonest:
		return "honest"
	case RoleAdv1:
		return "adv1"
	case RoleAdv2:
		return "adv2"
	default:
		return "unknown"
	}
}

// member pairs a protocol worker with its ground-truth role.
type member struct {
	worker rpol.Worker
	role   Role
}

// faultWorker applies a FaultPlan's crash-restart schedule to an in-process
// worker: during epochs the plan has the worker down, RunEpoch fails with
// rpol.ErrWorkerUnavailable before any training happens, exactly as a
// crashed peer looks to a deadline-bounded transport — so the manager
// records it absent. The decision is a pure function of (plan seed, worker
// ID, epoch), keeping seeded runs replayable.
type faultWorker struct {
	rpol.Worker
	plan *netsim.FaultPlan
}

func (f *faultWorker) RunEpoch(p rpol.TaskParams) (*rpol.EpochResult, error) {
	if f.plan.WorkerDown(f.Worker.ID(), p.Epoch) {
		return nil, fmt.Errorf("pool: worker %s down for epoch %d: %w",
			f.Worker.ID(), p.Epoch, rpol.ErrWorkerUnavailable)
	}
	return f.Worker.RunEpoch(p)
}

// Pool is a ready-to-run mining pool.
type Pool struct {
	cfg      Config
	spec     modelzoo.TaskSpec
	manager  *rpol.Manager
	members  []member
	evalNet  *nn.Network
	buildNet func() (*nn.Network, error)
	testXs   []tensor.Vector
	testYs   []int
	rewards  map[string]float64
	obs      *obs.Observer

	// Durability layer (nil/empty without Config.Journal).
	fs        fsio.FS
	journal   *journal.Journal
	recovered []journal.Seal

	// encBuf is the reused global-model encode scratch for seal digests and
	// resume checks; the pool runs epochs sequentially, so one suffices.
	encBuf []byte
}

// diskState is the atomically-written per-epoch snapshot (state.bin): the
// completed-epoch count, the global model's wire encoding, and the last
// epoch's seal. It is written BEFORE the seal record is journaled, so a
// crash between the two is reconciled on resume by adopting LastSeal as the
// missing seal — the invariant is state.Epoch ∈ {#seals, #seals+1}.
type diskState struct {
	Epoch    int           `json:"epoch"`
	Global   []byte        `json:"global"`
	LastSeal *journal.Seal `json:"lastSeal,omitempty"`
}

// Durability file names under Config.Journal.
const (
	journalFile = "epoch.wal"
	stateFile   = "state.bin"
)

// EpochStats records one epoch's outcome for the experiment harness.
type EpochStats struct {
	Epoch        int
	TestAccuracy float64
	Accepted     int
	Rejected     int
	// DetectedAdversaries counts rejected submissions that really came from
	// adversaries (true positives).
	DetectedAdversaries int
	// MissedAdversaries counts accepted adversarial submissions (false
	// negatives of the scheme as a detector).
	MissedAdversaries int
	// FalseRejections counts rejected honest submissions — the paper's
	// "0 false negative for honesty" target says this should stay 0.
	// Workers that merely missed their deadline are counted in
	// AbsentWorkers instead, never here.
	FalseRejections int
	// AbsentWorkers counts workers that missed the epoch entirely (crash,
	// partition, persistent loss): neither rewarded nor treated as
	// detected adversaries.
	AbsentWorkers   int
	Calibration     *rpol.Calibration
	VerifyCommBytes int64
	ReexecSteps     int
	// Phases is the epoch's per-phase cost breakdown (counts, bytes,
	// training steps), including the pool-level settlement phase.
	Phases obs.PhaseBreakdown
}

// New builds the pool: dataset generation and sharding, per-worker model
// instances (identical initialization, with the AMLayer prepended when
// configured), adversary placement, and the manager.
func New(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	observer := cfg.Obs.OrDefault()
	spec, err := modelzoo.Get(cfg.TaskName)
	if err != nil {
		return nil, err
	}

	// Build the shared data: train split partitioned into n+1 i.i.d.
	// shards (workers + the manager's calibration probe), plus the held-out
	// test set.
	_, train, test, err := spec.BuildProxy(cfg.Seed)
	if err != nil {
		return nil, err
	}
	shards, err := train.Partition(cfg.NumWorkers + 1)
	if err != nil {
		return nil, fmt.Errorf("pool: %w", err)
	}
	// Shard assignment is a construction-time phase: record the data moved
	// to workers (the manager keeps the probe shard, so it is excluded).
	var shardBytes int64
	for _, shard := range shards[:cfg.NumWorkers] {
		shardBytes += int64(shard.Len()) * int64(tensor.EncodedSize(spec.ProxyDim)+8)
	}
	obs.PhaseBreakdown{
		obs.PhaseShardAssign: {Count: int64(cfg.NumWorkers), Bytes: shardBytes},
	}.MirrorTo(observer.Registry())

	buildNet := func() (*nn.Network, error) {
		net, err := spec.BuildProxyNet(cfg.Seed + 1)
		if err != nil {
			return nil, err
		}
		if !cfg.UseAMLayer {
			return net, nil
		}
		// The pool uses a mild stack (c = 0.5, depth 3): the strong
		// theft-resistant configuration (amlayer.StackConfig) amplifies the
		// proxy's loss-surface curvature enough to fatten reproduction-error
		// tails, and theft resistance is a consensus-layer property
		// exercised by the Table I experiment, not by pool verification.
		stack, err := amlayer.NewDenseStack(cfg.ManagerAddress, spec.ProxyDim, 3, amlayer.DefaultConfig())
		if err != nil {
			return nil, err
		}
		return amlayer.PrependStack(stack, net)
	}

	// Adversary counts (rounded to nearest).
	nAdv1 := int(math.Round(cfg.Adv1Fraction * float64(cfg.NumWorkers)))
	nAdv2 := int(math.Round(cfg.Adv2Fraction * float64(cfg.NumWorkers)))
	if nAdv1+nAdv2 > cfg.NumWorkers {
		nAdv2 = cfg.NumWorkers - nAdv1
	}

	profiles := gpu.Profiles()
	members := make([]member, 0, cfg.NumWorkers)
	workers := make([]rpol.Worker, 0, cfg.NumWorkers)
	// raw keeps the unwrapped workers: fault wrappers forward rpol.Worker
	// only, so recovery fast-forwarding must reach through them.
	raw := make([]rpol.Worker, 0, cfg.NumWorkers)
	shardMap := make(map[string]*dataset.Dataset, cfg.NumWorkers)
	for i := 0; i < cfg.NumWorkers; i++ {
		profile := profiles[i%len(profiles)]
		shard := shards[i]
		runSeed := cfg.Seed + int64(1000+i)
		var (
			w    rpol.Worker
			role Role
		)
		switch {
		case i < nAdv1:
			role = RoleAdv1
			w = adversary.NewAdv1(fmt.Sprintf("adv1-%02d", i), profile, shard.Len())
		case i < nAdv1+nAdv2:
			role = RoleAdv2
			net, err := buildNet()
			if err != nil {
				return nil, err
			}
			w, err = adversary.NewAdv2(fmt.Sprintf("adv2-%02d", i), profile, runSeed, net, shard,
				cfg.Adv2HonestFraction, cfg.Lambda)
			if err != nil {
				return nil, err
			}
		default:
			role = RoleHonest
			net, err := buildNet()
			if err != nil {
				return nil, err
			}
			hw, err := rpol.NewHonestWorker(fmt.Sprintf("worker-%02d", i), profile, runSeed, net, shard)
			if err != nil {
				return nil, err
			}
			hw.SetObserver(observer)
			w = hw
		}
		raw = append(raw, w)
		if cfg.Faults != nil {
			w = &faultWorker{Worker: w, plan: cfg.Faults}
		}
		members = append(members, member{worker: w, role: role})
		workers = append(workers, w)
		shardMap[w.ID()] = shard
	}

	// Durability layer: open (or create) the epoch journal and give every
	// honest worker a disk-backed checkpoint store that streams through it.
	var (
		j   *journal.Journal
		st  *journal.State
		rec *journal.Recovery
	)
	if cfg.Journal != "" {
		if err := cfg.FS.MkdirAll(cfg.Journal); err != nil {
			return nil, fmt.Errorf("pool journal dir: %w", err)
		}
		walPath := filepath.Join(cfg.Journal, journalFile)
		if cfg.Resume {
			j, rec, err = journal.Open(cfg.FS, walPath, observer)
			if err != nil {
				return nil, fmt.Errorf("pool journal: %w", err)
			}
			st, err = journal.Reconstruct(rec.Records)
			if err != nil {
				return nil, fmt.Errorf("pool journal: %w", err)
			}
		} else {
			j, err = journal.Create(cfg.FS, walPath, observer)
			if err != nil {
				return nil, fmt.Errorf("pool journal: %w", err)
			}
		}
		for _, w := range raw {
			hw, ok := w.(*rpol.HonestWorker)
			if !ok {
				continue
			}
			store, err := checkpoint.NewDiskStoreFS(cfg.FS, filepath.Join(cfg.Journal, "ckpt-"+hw.ID()))
			if err != nil {
				return nil, fmt.Errorf("pool journal: %w", err)
			}
			hw.SetStore(store)
			hw.SetJournal(j)
		}
	}

	managerNet, err := buildNet()
	if err != nil {
		return nil, err
	}
	manager, err := rpol.NewManager(rpol.ManagerConfig{
		Address:           cfg.ManagerAddress,
		Scheme:            cfg.Scheme,
		Hyper:             rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
		StepsPerEpoch:     cfg.StepsPerEpoch,
		CheckpointEvery:   cfg.CheckpointEvery,
		Samples:           cfg.Samples,
		MerkleCommit:      cfg.MerkleCommit,
		GPU:               gpu.G3090,
		MasterKey:         []byte(cfg.ManagerAddress + "/nonce-master"),
		Seed:              cfg.Seed + 7,
		ParallelVerifiers: cfg.Verifiers,
		NetBuilder:        buildNet,
		Workers:           cfg.Workers,
		Quorum:            cfg.Quorum,
		Obs:               observer,
		Journal:           j,
		// In-process workers each own their network and trainer, so the
		// collection phase can safely run them concurrently — except under a
		// journal, where serial collection keeps the order of durable writes
		// (checkpoint streams, commit records) a pure function of the seed.
		ConcurrentCollection: cfg.Journal == "",
	}, managerNet, workers, shardMap, shards[cfg.NumWorkers])
	if err != nil {
		return nil, err
	}

	evalNet, err := buildNet()
	if err != nil {
		return nil, err
	}
	testXs := make([]tensor.Vector, test.Len())
	testYs := make([]int, test.Len())
	for i, ex := range test.Examples {
		testXs[i] = ex.Features
		testYs[i] = ex.Label
	}
	p := &Pool{
		cfg:      cfg,
		spec:     spec,
		manager:  manager,
		members:  members,
		evalNet:  evalNet,
		buildNet: buildNet,
		testXs:   testXs,
		testYs:   testYs,
		rewards:  make(map[string]float64),
		obs:      observer,
		fs:       cfg.FS,
		journal:  j,
	}
	if cfg.Resume && st != nil {
		if err := p.applyRecovery(st, raw); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// applyRecovery rewinds the freshly-built pool to the journaled position:
// it reconciles the seal history with the state file, restores the global
// model and reward ledger, fast-forwards every worker's noise stream past
// the epochs it trained, and arms honest workers to adopt the in-flight
// epoch's durable checkpoint prefix.
func (p *Pool) applyRecovery(st *journal.State, raw []rpol.Worker) error {
	// Reconcile the one crash window the write order leaves open: state.bin
	// lands atomically BEFORE the seal record, so the state file may be one
	// epoch ahead of the journal — its embedded seal is the missing record.
	var ds diskState
	haveState := false
	stateData, err := p.fs.ReadFile(filepath.Join(p.cfg.Journal, stateFile))
	switch {
	case err == nil:
		payload, _, err := fsio.DecodeFile(stateData)
		if err != nil {
			return fmt.Errorf("pool resume: state file: %w", err)
		}
		if err := json.Unmarshal(payload, &ds); err != nil {
			return fmt.Errorf("pool resume: state file: %w", err)
		}
		haveState = true
	case errors.Is(err, os.ErrNotExist):
		// No epoch ever sealed; resume is a fresh run.
	default:
		return fmt.Errorf("pool resume: %w", err)
	}
	if !haveState {
		if len(st.Sealed) > 0 {
			return fmt.Errorf("pool resume: %d sealed epochs but no state file", len(st.Sealed))
		}
	} else {
		switch {
		case ds.Epoch == len(st.Sealed)+1 && ds.LastSeal != nil:
			// Crashed between writing state.bin and journaling the seal.
			if err := p.journal.LogSeal(*ds.LastSeal); err != nil {
				return fmt.Errorf("pool resume: %w", err)
			}
			st.Sealed = append(st.Sealed, *ds.LastSeal)
			if st.InFlight >= 0 && st.InFlight <= ds.LastSeal.Epoch {
				st.ClearInFlight()
			}
		case ds.Epoch == len(st.Sealed):
			// Clean: every sealed epoch has its record.
		default:
			return fmt.Errorf("pool resume: state file at epoch %d, journal sealed %d",
				ds.Epoch, len(st.Sealed))
		}
	}
	completed := len(st.Sealed)
	p.recovered = append([]journal.Seal(nil), st.Sealed...)

	if completed > 0 {
		global, err := tensor.DecodeVector(ds.Global)
		if err != nil {
			return fmt.Errorf("pool resume: global model: %w", err)
		}
		if err := p.manager.Restore(completed, global); err != nil {
			return fmt.Errorf("pool resume: %w", err)
		}
		p.encBuf = global.AppendEncode(p.encBuf[:0])
		if got := fsio.Checksum(p.encBuf); got != st.Sealed[completed-1].GlobalDigest {
			return fmt.Errorf("pool resume: global model digest %x does not match seal %x",
				got, st.Sealed[completed-1].GlobalDigest)
		}
	}

	// Replay the reward ledger from the seal records.
	for _, seal := range st.Sealed {
		for _, id := range seal.AcceptedWorkers {
			p.rewards[id]++
		}
	}

	// Fast-forward each worker's hardware noise stream past the epochs it
	// actually trained (fault-plan-down epochs trained nothing — the plan is
	// a pure function of (seed, worker, epoch), so this is replayable).
	for _, w := range raw {
		ff, ok := w.(rpol.EpochFastForwarder)
		if !ok {
			continue
		}
		trained := 0
		for e := 0; e < completed; e++ {
			if p.cfg.Faults == nil || !p.cfg.Faults.WorkerDown(w.ID(), e) {
				trained++
			}
		}
		ff.FastForwardEpochs(trained, p.cfg.StepsPerEpoch, p.cfg.CheckpointEvery)
	}

	// Arm the in-flight epoch's checkpoint-prefix adoption. The task record
	// must announce exactly the epoch and global model the restored manager
	// will re-announce; anything else means the prefix belongs to a
	// different history and retraining from scratch is the safe choice.
	p.encBuf = p.manager.Global().AppendEncode(p.encBuf[:0])
	if st.InFlight == completed && st.Task != nil &&
		st.Task.GlobalDigest == fsio.Checksum(p.encBuf) {
		for _, w := range raw {
			hw, ok := w.(*rpol.HonestWorker)
			if !ok {
				continue
			}
			if digests := st.CheckpointDigests(hw.ID()); len(digests) > 0 {
				hw.PrepareResume(completed, digests)
			}
		}
	}
	p.obs.Counter("pool_resumes_total").Inc()
	p.obs.Publish(obs.StreamEvent{
		Kind:   obs.EventPoolResumed,
		Epoch:  int64(completed),
		Detail: fmt.Sprintf("sealed=%d inFlight=%d", completed, st.InFlight),
	})
	return nil
}

// CompletedEpochs returns the number of sealed epochs (including recovered
// ones after a resume).
func (p *Pool) CompletedEpochs() int { return p.manager.Epoch() }

// Recovered returns the seal records a resumed pool replayed its position
// from (nil for a fresh pool).
func (p *Pool) Recovered() []journal.Seal {
	return append([]journal.Seal(nil), p.recovered...)
}

// Close releases the pool's durability resources (the journal's append
// handle). Safe on a pool without a journal.
func (p *Pool) Close() error {
	if p.journal == nil {
		return nil
	}
	return p.journal.Close()
}

// Spec returns the pool's task spec.
func (p *Pool) Spec() modelzoo.TaskSpec { return p.spec }

// Manager exposes the underlying protocol manager.
func (p *Pool) Manager() *rpol.Manager { return p.manager }

// Roles returns the ground-truth role of every worker ID.
func (p *Pool) Roles() map[string]Role {
	out := make(map[string]Role, len(p.members))
	for _, m := range p.members {
		out[m.worker.ID()] = m.role
	}
	return out
}

// CandidateNet materializes the pool's current global model as a network
// instance (with the AMLayer stack, when configured) ready to be proposed
// as a consensus candidate.
func (p *Pool) CandidateNet() (*nn.Network, error) {
	net, err := p.buildNet()
	if err != nil {
		return nil, err
	}
	if err := net.SetParamVector(p.manager.Global()); err != nil {
		return nil, fmt.Errorf("pool candidate: %w", err)
	}
	return net, nil
}

// TestSet returns the pool's held-out evaluation data.
func (p *Pool) TestSet() ([]tensor.Vector, []int) {
	xs := make([]tensor.Vector, len(p.testXs))
	copy(xs, p.testXs)
	ys := make([]int, len(p.testYs))
	copy(ys, p.testYs)
	return xs, ys
}

// TestAccuracy evaluates the current global model on the held-out test set.
func (p *Pool) TestAccuracy() (float64, error) {
	if err := p.evalNet.SetParamVector(p.manager.Global()); err != nil {
		return 0, fmt.Errorf("pool eval: %w", err)
	}
	return p.evalNet.Accuracy(p.testXs, p.testYs)
}

// Rewards returns a copy of the cumulative per-worker rewards (one unit per
// accepted epoch, as in Theorem 3's normalization).
func (p *Pool) Rewards() map[string]float64 {
	out := make(map[string]float64, len(p.rewards))
	for k, v := range p.rewards {
		out[k] = v
	}
	return out
}

// RunEpoch coordinates one epoch and returns its stats.
func (p *Pool) RunEpoch() (*EpochStats, error) {
	roles := p.Roles()
	report, err := p.manager.RunEpoch()
	if err != nil {
		return nil, err
	}
	stats := &EpochStats{
		Epoch:           report.Epoch,
		Accepted:        report.Accepted,
		Rejected:        report.Rejected,
		AbsentWorkers:   report.Absent,
		Calibration:     report.Calibration,
		VerifyCommBytes: report.VerifyCommBytes,
		ReexecSteps:     report.ReexecSteps,
		Phases:          report.Phases.Clone(),
	}
	for _, o := range report.Outcomes {
		if o.Outcome == rpol.OutcomeAbsent {
			// An unreachable worker earns nothing and proves nothing: it is
			// neither a detected adversary nor a false rejection.
			continue
		}
		role := roles[o.WorkerID]
		switch {
		case o.Accepted && role == RoleHonest:
			p.rewards[o.WorkerID]++
		case o.Accepted: // adversary slipped through
			p.rewards[o.WorkerID]++
			stats.MissedAdversaries++
		case role == RoleHonest:
			stats.FalseRejections++
		default:
			stats.DetectedAdversaries++
		}
	}
	// Settlement: one reward credit per accepted submission.
	settlement := obs.PhaseBreakdown{obs.PhaseSettlement: {Count: int64(report.Accepted)}}
	stats.Phases.Merge(settlement)
	settlement.MirrorTo(p.obs.Registry())
	p.obs.Counter("pool_epochs_total").Inc()
	p.obs.Counter("pool_detected_adversaries_total").Add(int64(stats.DetectedAdversaries))
	p.obs.Counter("pool_missed_adversaries_total").Add(int64(stats.MissedAdversaries))
	p.obs.Counter("pool_false_rejections_total").Add(int64(stats.FalseRejections))
	if stats.AbsentWorkers > 0 {
		p.obs.Counter("pool_absent_workers_total").Add(int64(stats.AbsentWorkers))
	}
	acc, err := p.TestAccuracy()
	if err != nil {
		return nil, err
	}
	stats.TestAccuracy = acc
	p.obs.Gauge("pool_test_accuracy").Set(acc)
	p.obs.Publish(obs.StreamEvent{
		Kind:  obs.EventEpochSealed,
		Epoch: int64(stats.Epoch),
		Detail: fmt.Sprintf("accuracy=%.4f accepted=%d rejected=%d absent=%d",
			acc, stats.Accepted, stats.Rejected, stats.AbsentWorkers),
	})
	if p.journal != nil {
		if err := p.sealEpoch(stats, report); err != nil {
			return nil, err
		}
	}
	return stats, nil
}

// sealEpoch makes the settled epoch durable. Write order matters: the state
// snapshot (completed count + global model + the seal itself) lands
// atomically FIRST, then the seal record is appended to the journal. A crash
// between the two leaves state.bin one epoch ahead — applyRecovery adopts
// its embedded LastSeal as the missing record, so the invariant
// state.Epoch ∈ {#seals, #seals+1} always reconciles.
func (p *Pool) sealEpoch(stats *EpochStats, report *rpol.EpochReport) error {
	accepted := make([]string, 0, stats.Accepted)
	for _, o := range report.Outcomes {
		if o.Accepted {
			accepted = append(accepted, o.WorkerID)
		}
	}
	// The encode scratch doubles as the snapshot payload: json.Marshal
	// consumes it synchronously below, so reuse is safe.
	p.encBuf = p.manager.Global().AppendEncode(p.encBuf[:0])
	global := p.encBuf
	seal := journal.Seal{
		Epoch:           stats.Epoch,
		TestAccuracy:    stats.TestAccuracy,
		Accepted:        stats.Accepted,
		Rejected:        stats.Rejected,
		Absent:          stats.AbsentWorkers,
		Detected:        stats.DetectedAdversaries,
		Missed:          stats.MissedAdversaries,
		FalseRejections: stats.FalseRejections,
		VerifyCommBytes: stats.VerifyCommBytes,
		ReexecSteps:     stats.ReexecSteps,
		GlobalDigest:    fsio.Checksum(global),
		AcceptedWorkers: accepted,
	}
	payload, err := json.Marshal(diskState{Epoch: stats.Epoch + 1, Global: global, LastSeal: &seal})
	if err != nil {
		return fmt.Errorf("pool seal: %w", err)
	}
	if err := p.fs.WriteFileAtomic(filepath.Join(p.cfg.Journal, stateFile), fsio.EncodeFile(payload)); err != nil {
		return fmt.Errorf("pool seal: %w", err)
	}
	if err := p.journal.LogSeal(seal); err != nil {
		return fmt.Errorf("pool seal: %w", err)
	}
	return nil
}

// RunEpochs runs n epochs and returns the stats history.
func (p *Pool) RunEpochs(n int) ([]*EpochStats, error) {
	if n < 1 {
		return nil, errors.New("pool: need at least one epoch")
	}
	history := make([]*EpochStats, 0, n)
	for i := 0; i < n; i++ {
		s, err := p.RunEpoch()
		if err != nil {
			return nil, err
		}
		history = append(history, s)
	}
	return history, nil
}
