package pool

import (
	"bytes"
	"testing"

	"rpol/internal/obs"
	"rpol/internal/rpol"
)

// runEpochs runs a fresh pool from cfg for n epochs and returns the stats.
func runEpochs(t *testing.T, cfg Config, n int) []*EpochStats {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*EpochStats, n)
	for i := range out {
		s, err := p.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// TestInstrumentationPreservesDeterminism is the observability layer's core
// contract: a fully instrumented same-seed run must yield byte-identical
// protocol results to an uninstrumented one. Metrics, spans, and the
// simulated clock may consume no protocol randomness and perturb no state.
func TestInstrumentationPreservesDeterminism(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV2)
	cfg.NumWorkers = 6
	cfg.Adv1Fraction = 0.34
	cfg.Adv2Fraction = 0.34

	plain := runEpochs(t, cfg, 2)

	instrumented := cfg
	var trace bytes.Buffer
	reg := obs.NewRegistry()
	instrumented.Obs = obs.NewObserver(reg, obs.NewTracer(&trace, nil))
	traced := runEpochs(t, instrumented, 2)

	for i := range plain {
		a, b := plain[i], traced[i]
		if a.Epoch != b.Epoch || a.TestAccuracy != b.TestAccuracy ||
			a.Accepted != b.Accepted || a.Rejected != b.Rejected ||
			a.DetectedAdversaries != b.DetectedAdversaries ||
			a.MissedAdversaries != b.MissedAdversaries ||
			a.FalseRejections != b.FalseRejections ||
			a.VerifyCommBytes != b.VerifyCommBytes ||
			a.ReexecSteps != b.ReexecSteps {
			t.Errorf("epoch %d: instrumented stats diverged\nplain: %+v\ntraced: %+v", i, a, b)
		}
	}
	// And the instrumentation must actually have recorded something.
	if reg.Snapshot().Empty() {
		t.Error("instrumented run recorded no metrics")
	}
	if trace.Len() == 0 {
		t.Error("instrumented run emitted no trace")
	}
}

// TestEpochPhaseBreakdown checks that an instrumented epoch reports costs
// for the pipeline's load-bearing phases.
func TestEpochPhaseBreakdown(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV2)
	cfg.Obs = obs.NewObserver(obs.NewRegistry(), nil)
	stats := runEpochs(t, cfg, 1)[0]
	if stats.Phases == nil {
		t.Fatal("epoch stats carry no phase breakdown")
	}
	for _, phase := range []string{
		obs.PhaseTaskPublish, obs.PhaseTraining, obs.PhaseCommitment,
		obs.PhaseChallenge, obs.PhaseReproduction, obs.PhaseVerdict,
		obs.PhaseAggregation, obs.PhaseSettlement,
	} {
		if stats.Phases[phase].Count == 0 {
			t.Errorf("phase %q has zero count: %+v", phase, stats.Phases[phase])
		}
	}
	if stats.Phases[obs.PhaseTraining].Steps == 0 {
		t.Error("training phase reports no steps")
	}
	if stats.Phases[obs.PhaseCommitment].Bytes == 0 {
		t.Error("commitment phase reports no bytes")
	}
	// The breakdown is also mirrored into the registry as counters.
	reg := cfg.Obs.Registry()
	if got := reg.Counter("rpol_phase_training_steps_total").Value(); got == 0 {
		t.Error("mirrored phase counter is zero")
	}
}

// TestTraceSpansNest checks the acceptance criterion that trace spans nest
// manager → worker → verify.
func TestTraceSpansNest(t *testing.T) {
	cfg := baseConfig(rpol.SchemeV2)
	var trace bytes.Buffer
	cfg.Obs = obs.NewObserver(nil, obs.NewTracer(&trace, nil))
	runEpochs(t, cfg, 1)

	events, err := obs.ReadEvents(&trace)
	if err != nil {
		t.Fatal(err)
	}
	tree := obs.BuildSpanTree(events)
	verifies := tree.SpansNamed("verify.submission")
	if len(verifies) != cfg.NumWorkers {
		t.Fatalf("got %d verify.submission spans, want %d", len(verifies), cfg.NumWorkers)
	}
	for _, id := range verifies {
		anc := tree.Ancestry(id)
		var hasWorker, hasEpoch bool
		for _, name := range anc {
			if name == "worker.epoch" {
				hasWorker = true
			}
			if name == "manager.epoch" {
				hasEpoch = true
			}
		}
		if !hasWorker || !hasEpoch {
			t.Errorf("verify.submission ancestry = %v, want worker.epoch and manager.epoch above it", anc)
		}
	}
	// Worker-side training and verifier-side reproduction also appear.
	if len(tree.SpansNamed("worker.train")) == 0 {
		t.Error("no worker.train spans")
	}
	if len(tree.SpansNamed("verify.reproduce")) == 0 {
		t.Error("no verify.reproduce spans")
	}
}
