package pool

import (
	"errors"
	"fmt"
	"testing"

	"rpol/internal/fsio"
	"rpol/internal/journal"
	"rpol/internal/rpol"
)

// journaledConfig is the recovery suite's pool: small enough to sweep every
// crash point, structured enough (multiple checkpoints per epoch, multiple
// workers, sampled verification) that the crash points land in every phase
// of the durable write schedule.
func journaledConfig(workers int, dir string, fs fsio.FS) Config {
	return Config{
		TaskName:        "resnet18-cifar10",
		Scheme:          rpol.SchemeV2,
		NumWorkers:      2,
		StepsPerEpoch:   6,
		CheckpointEvery: 3,
		Samples:         2,
		Seed:            99,
		Workers:         workers,
		Journal:         dir,
		FS:              fs,
	}
}

func sealSummary(s journal.Seal) epochSummary {
	return epochSummary{
		Epoch:           s.Epoch,
		TestAccuracy:    s.TestAccuracy,
		Accepted:        s.Accepted,
		Rejected:        s.Rejected,
		Absent:          s.Absent,
		Detected:        s.Detected,
		Missed:          s.Missed,
		FalseRejections: s.FalseRejections,
		VerifyCommBytes: s.VerifyCommBytes,
		ReexecSteps:     s.ReexecSteps,
	}
}

func globalDigest(p *Pool) uint64 {
	return fsio.Checksum(p.Manager().Global().Encode())
}

func sameRewards(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// runBaseline runs the uninterrupted journaled pool and returns its ground
// truth: per-epoch summaries, the final global model digest, the reward
// ledger, and the total number of durable writes the run issued (the crash
// sweep's schedule size).
func runBaseline(t *testing.T, workers, epochs int) ([]epochSummary, uint64, map[string]float64, uint64) {
	t.Helper()
	counter := fsio.NewFaultFS(fsio.OS, nil)
	p, err := New(journaledConfig(workers, t.TempDir(), counter))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	history, err := p.RunEpochs(epochs)
	if err != nil {
		t.Fatal(err)
	}
	summaries := make([]epochSummary, len(history))
	for i, s := range history {
		summaries[i] = summarize(s)
	}
	return summaries, globalDigest(p), p.Rewards(), counter.Writes()
}

// TestJournaledRunMatchesPlainSchedule sanity-checks the baseline itself:
// two journaled runs with the same seed in different directories are
// bit-identical, and journaling leaves the zero-false-rejection invariant
// intact.
func TestJournaledRunIsDeterministic(t *testing.T) {
	first, firstDigest, _, writes := runBaseline(t, 1, 2)
	second, secondDigest, _, _ := runBaseline(t, 1, 2)
	for e := range first {
		if first[e] != second[e] {
			t.Fatalf("epoch %d diverged between journaled runs:\n  %+v\n  %+v", e, first[e], second[e])
		}
		if first[e].FalseRejections != 0 {
			t.Fatalf("epoch %d: journaled honest pool rejected %d honest workers", e, first[e].FalseRejections)
		}
	}
	if firstDigest != secondDigest {
		t.Fatalf("global digests diverged: %x vs %x", firstDigest, secondDigest)
	}
	if writes < 20 {
		t.Fatalf("only %d durable writes across 2 epochs; the crash sweep needs a denser schedule", writes)
	}
}

// TestResumeAfterCleanStop is the graceful half of recovery: run one epoch,
// close the pool, reopen with Resume, run the second epoch — and the spliced
// history must be bit-identical to the uninterrupted run.
func TestResumeAfterCleanStop(t *testing.T) {
	const epochs = 2
	want, wantDigest, wantRewards, _ := runBaseline(t, 1, epochs)

	dir := t.TempDir()
	p, err := New(journaledConfig(1, dir, nil))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	got := []epochSummary{summarize(stats)}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rcfg := journaledConfig(1, dir, nil)
	rcfg.Resume = true
	resumed, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.CompletedEpochs() != 1 {
		t.Fatalf("resumed pool at epoch %d, want 1", resumed.CompletedEpochs())
	}
	if rec := resumed.Recovered(); len(rec) != 1 || sealSummary(rec[0]) != got[0] {
		t.Fatalf("recovered seals %+v do not match the epoch actually run", rec)
	}
	for resumed.CompletedEpochs() < epochs {
		stats, err := resumed.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, summarize(stats))
	}
	for e := range want {
		if got[e] != want[e] {
			t.Fatalf("epoch %d diverged after clean-stop resume:\n  want %+v\n  got  %+v", e, want[e], got[e])
		}
	}
	if d := globalDigest(resumed); d != wantDigest {
		t.Fatalf("global digest %x after resume, want %x", d, wantDigest)
	}
	if !sameRewards(resumed.Rewards(), wantRewards) {
		t.Fatalf("rewards %v after resume, want %v", resumed.Rewards(), wantRewards)
	}
}

// TestCrashRecoveryEquivalence is the exhaustive crash sweep: for every
// durable-write ordinal in the baseline schedule, run the pool with a fault
// plan that kills the filesystem at exactly that write, then resume from
// whatever survived on disk and finish the run. Every crash point must
// recover to EpochStats, a reward ledger, and a global model bit-identical
// to the uninterrupted run.
func TestCrashRecoveryEquivalence(t *testing.T) {
	const epochs = 2
	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			t.Parallel()
			want, wantDigest, wantRewards, total := runBaseline(t, workers, epochs)

			// -short keeps a representative stride through the schedule;
			// the full sweep (CI's crash-soak step) hits every ordinal.
			stride := uint64(1)
			if testing.Short() {
				stride = 7
			}
			for ord := uint64(0); ord < total; ord += stride {
				if !crashAndRecover(t, workers, epochs, ord, want, wantDigest, wantRewards) {
					return
				}
			}
		})
	}
}

// crashAndRecover replays one crash point: run against a FaultFS that dies
// at write ordinal ord, then resume on the real filesystem and compare the
// spliced history against the baseline. Returns false once the subtest has
// failed fatally enough to stop the sweep.
func crashAndRecover(t *testing.T, workers, epochs int, ord uint64, want []epochSummary, wantDigest uint64, wantRewards map[string]float64) bool {
	t.Helper()
	dir := t.TempDir()
	crashFS := fsio.NewFaultFS(fsio.OS, fsio.CrashAtWrite(int64(ord)+1, ord))
	sawCrash := false
	crashed, err := New(journaledConfig(workers, dir, crashFS))
	if err != nil {
		if !errors.Is(err, fsio.ErrInjectedCrash) {
			t.Errorf("ordinal %d: New failed with non-injected error: %v", ord, err)
			return false
		}
		sawCrash = true
	} else {
		for e := 0; e < epochs; e++ {
			if _, err := crashed.RunEpoch(); err != nil {
				if !errors.Is(err, fsio.ErrInjectedCrash) {
					t.Errorf("ordinal %d: epoch failed with non-injected error: %v", ord, err)
					return false
				}
				sawCrash = true
				break
			}
		}
		_ = crashed.Close() // the handle may already be down; release it regardless
	}
	if !sawCrash {
		t.Errorf("ordinal %d: run completed without hitting the injected crash (write schedule drifted from the baseline count)", ord)
		return false
	}

	rcfg := journaledConfig(workers, dir, nil)
	rcfg.Resume = true
	resumed, err := New(rcfg)
	if err != nil {
		t.Errorf("ordinal %d: resume: %v", ord, err)
		return false
	}
	defer resumed.Close()
	got := make([]epochSummary, 0, epochs)
	for _, seal := range resumed.Recovered() {
		got = append(got, sealSummary(seal))
	}
	for resumed.CompletedEpochs() < epochs {
		stats, err := resumed.RunEpoch()
		if err != nil {
			t.Errorf("ordinal %d: resumed epoch: %v", ord, err)
			return false
		}
		got = append(got, summarize(stats))
	}
	if len(got) != len(want) {
		t.Errorf("ordinal %d: recovered %d epochs, want %d", ord, len(got), len(want))
		return false
	}
	ok := true
	for e := range want {
		if got[e] != want[e] {
			t.Errorf("ordinal %d: epoch %d diverged after crash recovery:\n  want %+v\n  got  %+v", ord, e, want[e], got[e])
			ok = false
		}
	}
	if d := globalDigest(resumed); d != wantDigest {
		t.Errorf("ordinal %d: global digest %x after recovery, want %x", ord, d, wantDigest)
		ok = false
	}
	if !sameRewards(resumed.Rewards(), wantRewards) {
		t.Errorf("ordinal %d: rewards %v after recovery, want %v", ord, resumed.Rewards(), wantRewards)
		ok = false
	}
	return ok
}

// TestResumeMerkleCommit replays the clean-stop resume under streaming
// Merkle commitments: the journal's commit records carry the 32-byte root
// instead of a digest over the inline hash list, and a resumed pool must
// splice into a history bit-identical to the uninterrupted merkle run.
func TestResumeMerkleCommit(t *testing.T) {
	const epochs = 2
	merkled := func(dir string) Config {
		cfg := journaledConfig(1, dir, nil)
		cfg.MerkleCommit = true
		return cfg
	}

	base, err := New(merkled(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	history, err := base.RunEpochs(epochs)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]epochSummary, len(history))
	for i, s := range history {
		want[i] = summarize(s)
	}
	wantDigest := globalDigest(base)

	dir := t.TempDir()
	p, err := New(merkled(dir))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	got := []epochSummary{summarize(stats)}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	rcfg := merkled(dir)
	rcfg.Resume = true
	resumed, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.CompletedEpochs() != 1 {
		t.Fatalf("resumed pool at epoch %d, want 1", resumed.CompletedEpochs())
	}
	for resumed.CompletedEpochs() < epochs {
		stats, err := resumed.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, summarize(stats))
	}
	for e := range want {
		if got[e] != want[e] {
			t.Fatalf("epoch %d diverged after merkle resume:\n  want %+v\n  got  %+v", e, want[e], got[e])
		}
	}
	if d := globalDigest(resumed); d != wantDigest {
		t.Fatalf("global digest %x after merkle resume, want %x", d, wantDigest)
	}
}
