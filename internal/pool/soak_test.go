package pool

import (
	"testing"

	"rpol/internal/rpol"
)

// TestSoakFullSystem is the long integration test: a 10-worker pool with
// every adversary class present, the AMLayer enabled, decentralized
// verification, and eight epochs of training. It asserts the system-level
// invariants the paper's evaluation rests on:
//
//   - honest workers are never rejected (0 false negatives for honesty),
//   - every adversarial submission is rejected in every epoch,
//   - the global model's accuracy improves monotonically-ish and ends high,
//   - rewards flow exclusively to honest workers,
//   - calibration adapts each epoch (fresh α/β per epoch).
func TestSoakFullSystem(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	cfg := Config{
		TaskName:     "resnet18-cifar10",
		Scheme:       rpol.SchemeV2,
		NumWorkers:   10,
		Adv1Fraction: 0.2,
		Adv2Fraction: 0.2,
		UseAMLayer:   true,
		Verifiers:    4,
		Seed:         2024,
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	roles := p.Roles()
	nAdv := 0
	for _, r := range roles {
		if r != RoleHonest {
			nAdv++
		}
	}
	if nAdv != 4 {
		t.Fatalf("adversaries placed = %d", nAdv)
	}

	const epochs = 8
	var (
		prevBeta float64
		betas    int
		first    float64
	)
	for e := 0; e < epochs; e++ {
		stats, err := p.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			first = stats.TestAccuracy
		}
		if stats.FalseRejections != 0 {
			t.Fatalf("epoch %d: %d honest workers rejected", e, stats.FalseRejections)
		}
		if stats.DetectedAdversaries != nAdv {
			t.Errorf("epoch %d: detected %d of %d adversaries", e, stats.DetectedAdversaries, nAdv)
		}
		if stats.Calibration == nil {
			t.Fatalf("epoch %d: no calibration", e)
		}
		if stats.Calibration.Beta != prevBeta {
			betas++
			prevBeta = stats.Calibration.Beta
		}
	}
	if betas < epochs/2 {
		t.Errorf("calibration barely adapted: %d distinct β over %d epochs", betas, epochs)
	}

	final, err := p.TestAccuracy()
	if err != nil {
		t.Fatal(err)
	}
	if final <= first {
		t.Errorf("accuracy did not improve: %v → %v", first, final)
	}
	if final < 0.8 {
		t.Errorf("final accuracy %v too low for 8 epochs of 6 honest workers", final)
	}

	for id, reward := range p.Rewards() {
		if roles[id] != RoleHonest && reward > 0 {
			t.Errorf("adversary %s earned %v", id, reward)
		}
		if roles[id] == RoleHonest && reward != epochs {
			t.Errorf("honest %s earned %v of %d", id, reward, epochs)
		}
	}
}
