package pool

import (
	"errors"
	"testing"

	"rpol/internal/rpol"
)

// epochSummary is the comparable projection of EpochStats (Calibration and
// Phases hold pointers/maps, so the struct itself isn't ==-comparable).
type epochSummary struct {
	Epoch           int
	TestAccuracy    float64
	Accepted        int
	Rejected        int
	Absent          int
	Detected        int
	Missed          int
	FalseRejections int
	VerifyCommBytes int64
	ReexecSteps     int
}

func summarize(s *EpochStats) epochSummary {
	return epochSummary{
		Epoch:           s.Epoch,
		TestAccuracy:    s.TestAccuracy,
		Accepted:        s.Accepted,
		Rejected:        s.Rejected,
		Absent:          s.AbsentWorkers,
		Detected:        s.DetectedAdversaries,
		Missed:          s.MissedAdversaries,
		FalseRejections: s.FalseRejections,
		VerifyCommBytes: s.VerifyCommBytes,
		ReexecSteps:     s.ReexecSteps,
	}
}

// TestFaultSoakReplayDeterminism is the fault-injection soak: a seeded
// FaultPlan knocks workers out across epochs, and two replays of the same
// (pool seed, fault seed) must produce identical EpochStats — absences
// included — with honest-but-absent workers never counted as false
// rejections.
func TestFaultSoakReplayDeterminism(t *testing.T) {
	run := func() []epochSummary {
		cfg := baseConfig(rpol.SchemeV2)
		cfg.FaultSeed = 17
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		history, err := p.RunEpochs(6)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]epochSummary, len(history))
		for i, s := range history {
			out[i] = summarize(s)
		}
		return out
	}
	first := run()
	second := run()

	totalAbsent := 0
	for e := range first {
		if first[e] != second[e] {
			t.Fatalf("epoch %d diverged between replays:\n  %+v\n  %+v", e, first[e], second[e])
		}
		totalAbsent += first[e].Absent
		if first[e].FalseRejections != 0 {
			t.Fatalf("epoch %d: %d false rejections in an honest pool under faults (absent workers misclassified?)",
				e, first[e].FalseRejections)
		}
		if got := first[e].Accepted + first[e].Rejected + first[e].Absent; got != 5 {
			t.Fatalf("epoch %d: outcomes cover %d of 5 workers", e, got)
		}
	}
	if totalAbsent == 0 {
		t.Fatal("fault seed 17 injected no absences across 6 epochs; pick a seed that exercises the crash schedule")
	}
}

func TestPoolWithoutFaultsHasNoAbsences(t *testing.T) {
	p, err := New(baseConfig(rpol.SchemeV2))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.AbsentWorkers != 0 {
		t.Fatalf("fault-free pool recorded %d absences", stats.AbsentWorkers)
	}
}

func TestConfigValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"StepsPerEpoch", func(c *Config) { c.StepsPerEpoch = -1 }},
		{"CheckpointEvery", func(c *Config) { c.CheckpointEvery = -5 }},
		{"Samples", func(c *Config) { c.Samples = -3 }},
		{"Verifiers", func(c *Config) { c.Verifiers = -2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig(rpol.SchemeV2)
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("negative %s accepted by Validate", tc.name)
			}
			if _, err := New(cfg); err == nil {
				t.Fatalf("negative %s accepted by New", tc.name)
			}
		})
	}
}

func TestPoolQuorumNotMetSurfacesUnavailable(t *testing.T) {
	// A quorum demanding every worker combined with a crash schedule that
	// eventually downs one must fail the epoch with an availability error.
	cfg := baseConfig(rpol.SchemeV2)
	cfg.FaultSeed = 17
	cfg.Quorum = cfg.NumWorkers
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.RunEpochs(8)
	if !errors.Is(err, rpol.ErrWorkerUnavailable) {
		t.Fatalf("err = %v, want quorum failure wrapping ErrWorkerUnavailable", err)
	}
}
