// Package mining runs the paper's full workflow (Fig. 2) end to end as a
// library: consensus nodes (mining pools) pull a DNN training task from the
// task pool, train collaboratively under RPoL verification until the target
// accuracy or an epoch budget, propose their models, and the consensus
// round — with the test set released only after enough proposals — elects
// the best generalizer, appends the block, and settles the winner's mining
// reward to its verified workers through the escrow.
package mining

import (
	"errors"
	"fmt"
	"io"

	"rpol/internal/amlayer"
	"rpol/internal/blockchain"
	"rpol/internal/dataset"
	"rpol/internal/obs"
	"rpol/internal/pool"
)

// Contender is one consensus node in the competition: a mining pool with
// its wallet.
type Contender struct {
	// Name labels the contender in results.
	Name string
	// Pool configures the contender's mining pool; ManagerAddress is
	// overwritten with the wallet's address.
	Pool pool.Config
	// ManagerCut is the pool fee withheld from the reward at settlement.
	ManagerCut float64
}

// CompetitionConfig describes one mined block's worth of competition.
type CompetitionConfig struct {
	// Task is the published training task. Its TargetAccuracy ends a
	// contender's training early; MinProposals gates the test-set release.
	Task blockchain.Task
	// MaxEpochs bounds each contender's training (the block time limit).
	MaxEpochs int
	// AMLDepth is the AMLayer stack depth contenders encode their address
	// with (must match the pool's; 3 by default).
	AMLDepth int
	// Entropy sources wallet keys (crypto/rand.Reader in production;
	// deterministic readers in tests).
	Entropy io.Reader
	// Obs receives the competition's metrics and spans. Nil falls back to
	// the process default observer (and is forwarded into each contender's
	// pool config, unless the contender set its own).
	Obs *obs.Observer
}

// ContenderResult is one pool's outcome.
type ContenderResult struct {
	Name          string
	Address       string
	EpochsRun     int
	FinalAccuracy float64
	// Detected tallies adversarial submissions the pool's own verification
	// rejected during training.
	Detected int
}

// Result is the competition's outcome.
type Result struct {
	Contenders []ContenderResult
	// Winner names the contender whose block was agreed.
	Winner string
	// Block is the appended block.
	Block blockchain.Block
	// ManagerReward and Payouts are the winner's escrow settlement.
	ManagerReward float64
	Payouts       []blockchain.Payout
}

// Errors returned by competitions.
var ErrNoContenders = errors.New("mining: need at least one contender")

// Run executes the competition on the given chain.
func Run(cfg CompetitionConfig, contenders []Contender, chain *blockchain.Chain) (*Result, error) {
	if len(contenders) == 0 {
		return nil, ErrNoContenders
	}
	if cfg.MaxEpochs < 1 {
		return nil, errors.New("mining: need a positive epoch budget")
	}
	if err := cfg.Task.Validate(); err != nil {
		return nil, err
	}
	depth := cfg.AMLDepth
	if depth <= 0 {
		depth = 3
	}

	round, err := blockchain.NewRound(cfg.Task, amlayer.DefaultConfig())
	if err != nil {
		return nil, err
	}
	round.AMLDepth = depth

	observer := cfg.Obs.OrDefault()
	compSpan := observer.Start(nil, "mining.competition",
		obs.String("task", cfg.Task.ModelSpec), obs.Int("contenders", int64(len(contenders))))
	defer compSpan.End()
	observer.Counter("mining_competitions_total").Inc()

	res := &Result{}
	var test *dataset.Dataset
	// settlers maps a contender's address to its pool for reward
	// settlement after the round decides.
	settlers := make(map[string]settler, len(contenders))
	for _, c := range contenders {
		wallet, err := blockchain.NewWallet(cfg.Entropy)
		if err != nil {
			return nil, fmt.Errorf("mining %s: %w", c.Name, err)
		}
		poolCfg := c.Pool
		poolCfg.TaskName = cfg.Task.ModelSpec
		poolCfg.UseAMLayer = true
		poolCfg.ManagerAddress = wallet.Address()
		if poolCfg.Obs == nil {
			poolCfg.Obs = observer
		}
		p, err := pool.New(poolCfg)
		if err != nil {
			return nil, fmt.Errorf("mining %s: %w", c.Name, err)
		}

		contSpan := observer.Start(compSpan, "mining.contender", obs.String("name", c.Name))
		cr := ContenderResult{Name: c.Name, Address: wallet.Address()}
		for cr.EpochsRun < cfg.MaxEpochs {
			stats, err := p.RunEpoch()
			if err != nil {
				contSpan.End(obs.String("error", err.Error()))
				return nil, fmt.Errorf("mining %s: %w", c.Name, err)
			}
			cr.EpochsRun++
			observer.Counter("mining_epochs_total").Inc()
			cr.Detected += stats.DetectedAdversaries
			cr.FinalAccuracy = stats.TestAccuracy
			if stats.TestAccuracy >= cfg.Task.TargetAccuracy {
				break
			}
		}
		contSpan.End(obs.Int("epochs", int64(cr.EpochsRun)),
			obs.Float("accuracy", cr.FinalAccuracy), obs.Int("detected", int64(cr.Detected)))
		res.Contenders = append(res.Contenders, cr)

		candidateNet, err := p.CandidateNet()
		if err != nil {
			return nil, fmt.Errorf("mining %s: %w", c.Name, err)
		}
		if err := round.Propose(blockchain.Candidate{
			Proposer: wallet.Address(),
			Net:      candidateNet,
			PubKey:   wallet.PublicKey(),
			Sig:      blockchain.SignCandidate(wallet, candidateNet),
		}); err != nil {
			return nil, fmt.Errorf("mining %s: %w", c.Name, err)
		}
		observer.Counter("mining_proposals_total").Inc()

		// All contenders train the same published task (same proxy seed),
		// so any contender's held-out split is the canonical test set.
		if test == nil {
			xs, ys := p.TestSet()
			test = &dataset.Dataset{NumClasses: p.Spec().ProxyClasses, Dim: p.Spec().ProxyDim}
			for i := range xs {
				test.Examples = append(test.Examples, dataset.Example{Features: xs[i], Label: ys[i]})
			}
		}

		settlers[wallet.Address()] = settler{pool: p, cut: c.ManagerCut}
	}

	outcome, err := round.Decide(test, chain)
	if err != nil {
		return nil, err
	}
	res.Block = outcome.Block
	for _, cr := range res.Contenders {
		if cr.Address == outcome.Winner.Proposer {
			res.Winner = cr.Name
		}
	}

	// Settle the mining reward through the winner's escrow: one credit per
	// accepted epoch per worker.
	settleSpan := observer.Start(compSpan, "mining.settlement", obs.String("winner", res.Winner))
	defer func() {
		settleSpan.End(obs.Float("managerReward", res.ManagerReward),
			obs.Int("payouts", int64(len(res.Payouts))))
	}()
	s, ok := settlers[outcome.Winner.Proposer]
	if !ok {
		return nil, errors.New("mining: winner has no settler")
	}
	escrow, err := blockchain.NewEscrow(s.cut)
	if err != nil {
		return nil, err
	}
	if err := escrow.Deposit(cfg.Task.Reward); err != nil {
		return nil, err
	}
	for id, reward := range s.pool.Rewards() {
		if reward > 0 {
			if err := escrow.Credit(id, reward); err != nil {
				return nil, err
			}
		}
	}
	res.ManagerReward, res.Payouts, err = escrow.Settle()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// settler pairs a pool with its fee for reward settlement.
type settler struct {
	pool *pool.Pool
	cut  float64
}
