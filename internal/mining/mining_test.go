package mining

import (
	"errors"
	"testing"

	"rpol/internal/blockchain"
	"rpol/internal/pool"
	"rpol/internal/rpol"
)

// detRand is a deterministic entropy source for reproducible wallets.
type detRand struct{ state uint64 }

func (d *detRand) Read(p []byte) (int, error) {
	for i := range p {
		d.state = d.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(d.state >> 56)
	}
	return len(p), nil
}

func task() blockchain.Task {
	return blockchain.Task{
		ID:             "block-7",
		ModelSpec:      "resnet18-cifar10",
		TargetAccuracy: 0.93,
		MinProposals:   2,
		Reward:         1000,
	}
}

func contenders() []Contender {
	return []Contender{
		{
			Name: "verified",
			Pool: pool.Config{
				Scheme: rpol.SchemeV2, NumWorkers: 5, Adv1Fraction: 0.4,
				StepsPerEpoch: 10, Seed: 31,
			},
			ManagerCut: 0.05,
		},
		{
			Name: "insecure",
			Pool: pool.Config{
				Scheme: rpol.SchemeBaseline, NumWorkers: 5, Adv1Fraction: 0.4,
				StepsPerEpoch: 10, Seed: 31,
			},
			ManagerCut: 0.05,
		},
	}
}

func TestCompetitionVerifiedPoolWins(t *testing.T) {
	chain := blockchain.NewChain()
	res, err := Run(CompetitionConfig{
		Task:      task(),
		MaxEpochs: 5,
		Entropy:   &detRand{state: 1},
	}, contenders(), chain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "verified" {
		t.Errorf("winner = %q, want the verified pool", res.Winner)
	}
	if chain.Height() != 1 {
		t.Errorf("chain height = %d", chain.Height())
	}
	if err := chain.Verify(); err != nil {
		t.Errorf("chain invalid: %v", err)
	}
	if res.Block.TaskID != "block-7" {
		t.Errorf("block task = %q", res.Block.TaskID)
	}

	// The verified pool detected its cheaters every epoch; the insecure one
	// detected nothing.
	byName := map[string]ContenderResult{}
	for _, c := range res.Contenders {
		byName[c.Name] = c
	}
	if byName["verified"].Detected == 0 {
		t.Error("verified pool detected no adversaries")
	}
	if byName["insecure"].Detected != 0 {
		t.Error("insecure pool claims detections")
	}

	// The reward settles: manager fee plus per-worker payouts totalling the
	// block reward.
	total := res.ManagerReward
	for _, p := range res.Payouts {
		total += p.Amount
		if p.Amount <= 0 {
			t.Errorf("payout %s = %v", p.WorkerID, p.Amount)
		}
	}
	if total < 999.999 || total > 1000.001 {
		t.Errorf("settlement total = %v, want 1000", total)
	}
	if len(res.Payouts) != 3 { // the 3 honest workers of the verified pool
		t.Errorf("payouts = %d, want 3", len(res.Payouts))
	}
}

func TestCompetitionTargetAccuracyStopsEarly(t *testing.T) {
	chain := blockchain.NewChain()
	cfg := CompetitionConfig{
		Task:      task(),
		MaxEpochs: 12,
		Entropy:   &detRand{state: 2},
	}
	cfg.Task.TargetAccuracy = 0.05 // trivially reached after epoch 1
	res, err := Run(cfg, contenders(), chain)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Contenders {
		if c.EpochsRun != 1 {
			t.Errorf("%s ran %d epochs, want early stop at 1", c.Name, c.EpochsRun)
		}
	}
}

func TestCompetitionValidation(t *testing.T) {
	chain := blockchain.NewChain()
	if _, err := Run(CompetitionConfig{Task: task(), MaxEpochs: 1, Entropy: &detRand{}}, nil, chain); !errors.Is(err, ErrNoContenders) {
		t.Errorf("err = %v", err)
	}
	if _, err := Run(CompetitionConfig{Task: task(), MaxEpochs: 0, Entropy: &detRand{}}, contenders(), chain); err == nil {
		t.Error("zero epochs accepted")
	}
	bad := CompetitionConfig{Task: blockchain.Task{}, MaxEpochs: 1, Entropy: &detRand{}}
	if _, err := Run(bad, contenders(), chain); err == nil {
		t.Error("invalid task accepted")
	}
}
