package rpol

import (
	"io"
	"time"

	"rpol/internal/blockchain"
	"rpol/internal/economics"
	"rpol/internal/experiments"
	"rpol/internal/lsh"
	"rpol/internal/mining"
	"rpol/internal/modelzoo"
	"rpol/internal/obs"
	"rpol/internal/pool"
	"rpol/internal/rpol"
)

// Scheme selects the verification variant: the insecure baseline, RPoLv1
// (raw-weight verification), or RPoLv2 (LSH-optimized verification).
type Scheme = rpol.Scheme

// Verification schemes.
const (
	SchemeBaseline = rpol.SchemeBaseline
	SchemeV1       = rpol.SchemeV1
	SchemeV2       = rpol.SchemeV2
)

// PoolConfig describes a mining-pool simulation: the task, the verification
// scheme, the pool size, and the adversary mix.
type PoolConfig = pool.Config

// Pool is a runnable mining pool of honest and adversarial workers
// coordinated by an RPoL-verifying manager.
type Pool = pool.Pool

// EpochStats reports one coordinated epoch: global-model test accuracy,
// acceptance and detection counts, calibration, and verification traffic.
type EpochStats = pool.EpochStats

// Role is a worker's ground-truth behaviour (honest, replay attacker,
// spoofing attacker).
type Role = pool.Role

// Worker roles.
const (
	RoleHonest = pool.RoleHonest
	RoleAdv1   = pool.RoleAdv1
	RoleAdv2   = pool.RoleAdv2
)

// NewPool builds a mining pool from the configuration. The same seed always
// yields an identical pool and an identical run.
func NewPool(cfg PoolConfig) (*Pool, error) { return pool.New(cfg) }

// Blockchain and mining-competition types: the PoUW substrate the pool
// competes in (Sec. III-A) and the end-to-end workflow of Fig. 2.
type (
	// MiningTask is a published PoUW training task.
	MiningTask = blockchain.Task
	// Chain is the append-only block chain.
	Chain = blockchain.Chain
	// Wallet is a consensus node's signing identity.
	Wallet = blockchain.Wallet
	// Contender is one competing mining pool.
	Contender = mining.Contender
	// CompetitionConfig parameterizes one mined block's competition.
	CompetitionConfig = mining.CompetitionConfig
	// CompetitionResult reports the winner, block, and reward settlement.
	CompetitionResult = mining.Result
)

// NewChain starts a chain at its genesis block.
func NewChain() *Chain { return blockchain.NewChain() }

// RunCompetition executes a full PoUW competition: contending pools train
// (with their own verification policies), propose models, and consensus
// elects the best generalizer and settles its reward.
func RunCompetition(cfg CompetitionConfig, contenders []Contender, chain *Chain) (*CompetitionResult, error) {
	return mining.Run(cfg, contenders, chain)
}

// Calibration is one epoch's adaptive LSH calibration: the α/β thresholds
// derived from measured reproduction errors and the optimized LSH
// parameters.
type Calibration = rpol.Calibration

// Observability types: the stdlib-only metrics registry and span tracer the
// protocol hot paths report through, plus the per-phase cost breakdown each
// epoch's EpochStats/EpochReport carries.
type (
	// Observer bundles a metrics Registry and a span Tracer; a nil Observer
	// (and nil instruments) no-op, so instrumentation is free when disabled.
	Observer = obs.Observer
	// Registry holds named counters, gauges, and histograms with
	// snapshot/reset and text/JSON exposition.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a Registry's values.
	MetricsSnapshot = obs.Snapshot
	// Tracer emits span start/end events as JSONL to a sink.
	Tracer = obs.Tracer
	// Clock supplies monotonic timestamps to a Tracer; the deterministic
	// SimClock is the default, WallClock is opt-in.
	Clock = obs.Clock
	// PhaseTotals is one protocol phase's accumulated cost.
	PhaseTotals = obs.PhaseTotals
	// PhaseBreakdown maps protocol phase names to their costs for one epoch.
	PhaseBreakdown = obs.PhaseBreakdown
	// EpochReport is the manager-level epoch outcome, including Phases.
	EpochReport = rpol.EpochReport
)

// NewObserver bundles a registry and tracer into an Observer.
func NewObserver(reg *Registry, tr *Tracer) *Observer { return obs.NewObserver(reg, tr) }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewTracer writes span events as JSON lines to w, timestamped by clock
// (nil clock selects a deterministic SimClock).
func NewTracer(w io.Writer, clock Clock) *Tracer { return obs.NewTracer(w, clock) }

// NewSimClock returns a deterministic logical clock advancing by tick per
// reading (tick <= 0 selects 1µs).
func NewSimClock(tick time.Duration) Clock { return obs.NewSimClock(tick) }

// NewWallClock returns a monotonic wall-time clock.
func NewWallClock() Clock { return obs.NewWallClock() }

// SetDefaultObserver installs o as the process-wide default observer that
// pools and managers constructed without an explicit Observer fall back to.
func SetDefaultObserver(o *Observer) { obs.SetDefault(o) }

// LSHParams are the tunable {r, k, l} of the p-stable LSH family.
type LSHParams = lsh.Params

// TaskSpec names a DNN task: the runnable proxy plus the paper-scale cost
// metadata (true parameter counts, model bytes, per-example FLOPs).
type TaskSpec = modelzoo.TaskSpec

// Tasks returns the registry of named tasks from the paper's evaluation.
func Tasks() map[string]TaskSpec { return modelzoo.Registry() }

// Task returns the named task spec.
func Task(name string) (TaskSpec, error) { return modelzoo.Get(name) }

// SoundnessError returns the probability that an attacker with honesty
// ratio hA evades q sampled checkpoints (Theorem 2).
func SoundnessError(hA, prLshBeta float64, q int) (float64, error) {
	return economics.SoundnessError(hA, prLshBeta, q)
}

// SamplesForSoundness returns the minimal sample count q for a target
// soundness error (Eq. 8).
func SamplesForSoundness(prErr, hA, prLshBeta float64) (int, error) {
	return economics.SamplesForSoundness(prErr, hA, prLshBeta)
}

// SamplesForNegativeGain returns the minimal q that makes attacking
// economically irrational (Eq. 11).
func SamplesForNegativeGain(hA, cTrain, cSpoof, prLshBeta float64) (int, error) {
	return economics.SamplesForNegativeGain(hA, cTrain, cSpoof, prLshBeta)
}

// Experiment result and option types, re-exported so downstream users can
// regenerate the paper's tables and figures programmatically. Each runner
// returns a structured result with a renderable text table.
type (
	// Fig1Options configures the LSH match-probability sweep (Fig. 1).
	Fig1Options = experiments.Fig1Options
	// Fig3Options configures the AMLayer accuracy comparison (Fig. 3).
	Fig3Options = experiments.Fig3Options
	// Table1Options configures the AMLayer evaluation (Table I).
	Table1Options = experiments.Table1Options
	// Fig4Options configures the reproduction-error study (Fig. 4).
	Fig4Options = experiments.Fig4Options
	// Fig5Options configures the adaptive-calibration evaluation (Fig. 5).
	Fig5Options = experiments.Fig5Options
	// Fig6Options configures the attack-resilience sweep (Fig. 6).
	Fig6Options = experiments.Fig6Options
	// Table2Options configures the epoch-time cost model (Table II).
	Table2Options = experiments.Table2Options
	// Table3Options configures the overhead breakdown (Table III).
	Table3Options = experiments.Table3Options
)

// Fig1 sweeps LSH matching probability against distance (Fig. 1).
func Fig1(opts Fig1Options) (*experiments.Fig1Result, error) { return experiments.Fig1(opts) }

// Fig3 compares accuracy curves with and without the AMLayer (Fig. 3).
func Fig3(opts Fig3Options) (*experiments.Fig3Result, error) { return experiments.Fig3(opts) }

// Table1 evaluates AMLayer cost and the address-replacing attack (Table I).
func Table1(opts Table1Options) (*experiments.Table1Result, error) { return experiments.Table1(opts) }

// Fig4 measures reproduction errors across GPU pairs and shards (Fig. 4).
func Fig4(opts Fig4Options) (*experiments.Fig4Result, error) { return experiments.Fig4(opts) }

// Fig5 evaluates the adaptive LSH calibration epoch by epoch (Fig. 5).
func Fig5(opts Fig5Options) (*experiments.Fig5Result, error) { return experiments.Fig5(opts) }

// Fig6 sweeps attacks × schemes × adversary fractions on live pools
// (Fig. 6).
func Fig6(opts Fig6Options) (*experiments.Fig6Result, error) { return experiments.Fig6(opts) }

// Table2 computes paper-scale one-epoch training times (Table II).
func Table2(opts Table2Options) (*experiments.Table2Result, error) { return experiments.Table2(opts) }

// Table3 computes paper-scale per-epoch resource and capital costs
// (Table III).
func Table3(opts Table3Options) (*experiments.Table3Result, error) { return experiments.Table3(opts) }

// Soundness tabulates the Sec. VI sample-count analysis.
func Soundness(opts experiments.SoundnessOptions) (*experiments.SoundnessResult, error) {
	return experiments.Soundness(opts)
}
