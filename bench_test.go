package rpol_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. VII), each regenerating the corresponding artifact
// through the experiment runners, plus micro-benchmarks for the protocol's
// hot paths (LSH hashing, commitments, verification, training steps).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Individual artifacts:
//
//	go test -bench=BenchmarkFig5Calibration -benchmem

import (
	"testing"

	rpolapi "rpol"
	"rpol/internal/commitment"
	"rpol/internal/experiments"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/tensor"
)

func BenchmarkFig1LSHCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig1(rpolapi.Fig1Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3AMLayerCurves(b *testing.B) {
	opts := rpolapi.Fig3Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 3, StepsPerEpoch: 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1AMLayer(b *testing.B) {
	opts := rpolapi.Table1Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 3, StepsPerEpoch: 10, AttackAddresses: 3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Table1(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ReproErrors(b *testing.B) {
	opts := rpolapi.Fig4Options{Shards: 2, StepsPerEpoch: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig4(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Calibration(b *testing.B) {
	opts := rpolapi.Fig5Options{Tasks: []string{"resnet18-cifar10"}, Epochs: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig5(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Accuracy(b *testing.B) {
	opts := rpolapi.Fig6Options{
		Tasks:              []string{"resnet18-cifar10"},
		AdversaryFractions: []float64{0.5},
		Epochs:             2,
		NumWorkers:         4,
		StepsPerEpoch:      10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig6(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2EpochTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Table2(rpolapi.Table2Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Table3(rpolapi.Table3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoundnessQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Soundness(experiments.SoundnessOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCommitment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CommitmentAblation(nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDoubleCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DoubleCheckAblation("", 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIntervalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IntervalSweep("", []int{5, 10}, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the protocol's hot paths.

func BenchmarkLSHHash(b *testing.B) {
	const dim = 4096
	fam, err := lsh.NewFamily(dim, lsh.Params{R: 1, K: 4, L: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewRNG(2).NormalVector(dim, 0, 1)
	b.SetBytes(int64(8 * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.Hash(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitmentHashList(b *testing.B) {
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = make([]byte, 1024)
		payloads[i][0] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := commitment.NewHashList(payloads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitmentMerkle(b *testing.B) {
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = make([]byte, 1024)
		payloads[i][0] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := commitment.NewMerkleTree(payloads)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tree.Prove(31); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceNoise(b *testing.B) {
	device, err := gpu.NewDevice(gpu.G3090, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := tensor.NewVector(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		device.Perturb(w)
	}
}

func BenchmarkPoolEpochV2(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeV2,
		NumWorkers:    4,
		StepsPerEpoch: 10,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolEpochBaseline(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeBaseline,
		NumWorkers:    4,
		StepsPerEpoch: 10,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifierPoolParallel(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeV2,
		NumWorkers:    8,
		StepsPerEpoch: 10,
		Verifiers:     4,
		Seed:          2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSamplingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SamplingSweep(experiments.SamplingSweepOptions{Trials: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOptimizerSweep(b *testing.B) {
	opts := experiments.OptimizerSweepOptions{Optimizers: []string{"sgd", "sgdm"}, Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OptimizerSweep(opts); err != nil {
			b.Fatal(err)
		}
	}
}
