package rpol_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Sec. VII), each regenerating the corresponding artifact
// through the experiment runners, plus micro-benchmarks for the protocol's
// hot paths (LSH hashing, commitments, verification, training steps).
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Individual artifacts:
//
//	go test -bench=BenchmarkFig5Calibration -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	rpolapi "rpol"
	"rpol/internal/commitment"
	"rpol/internal/experiments"
	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/nn"
	"rpol/internal/parallel"
	"rpol/internal/tensor"
)

func BenchmarkFig1LSHCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig1(rpolapi.Fig1Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3AMLayerCurves(b *testing.B) {
	opts := rpolapi.Fig3Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 3, StepsPerEpoch: 10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig3(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1AMLayer(b *testing.B) {
	opts := rpolapi.Table1Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 3, StepsPerEpoch: 10, AttackAddresses: 3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Table1(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ReproErrors(b *testing.B) {
	opts := rpolapi.Fig4Options{Shards: 2, StepsPerEpoch: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig4(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Calibration(b *testing.B) {
	opts := rpolapi.Fig5Options{Tasks: []string{"resnet18-cifar10"}, Epochs: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig5(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Accuracy(b *testing.B) {
	opts := rpolapi.Fig6Options{
		Tasks:              []string{"resnet18-cifar10"},
		AdversaryFractions: []float64{0.5},
		Epochs:             2,
		NumWorkers:         4,
		StepsPerEpoch:      10,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Fig6(opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2EpochTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Table2(rpolapi.Table2Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Table3(rpolapi.Table3Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoundnessQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := rpolapi.Soundness(experiments.SoundnessOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCommitment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CommitmentAblation(nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDoubleCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DoubleCheckAblation("", 2, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationIntervalSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.IntervalSweep("", []int{5, 10}, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks for the protocol's hot paths.

func BenchmarkLSHHash(b *testing.B) {
	const dim = 4096
	fam, err := lsh.NewFamily(dim, lsh.Params{R: 1, K: 4, L: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewRNG(2).NormalVector(dim, 0, 1)
	b.SetBytes(int64(8 * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.Hash(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitmentHashList(b *testing.B) {
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = make([]byte, 1024)
		payloads[i][0] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := commitment.NewHashList(payloads); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitmentMerkle(b *testing.B) {
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = make([]byte, 1024)
		payloads[i][0] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := commitment.NewMerkleTree(payloads)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tree.Prove(31); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceNoise(b *testing.B) {
	device, err := gpu.NewDevice(gpu.G3090, 1)
	if err != nil {
		b.Fatal(err)
	}
	w := tensor.NewVector(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		device.Perturb(w)
	}
}

func BenchmarkPoolEpochV2(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeV2,
		NumWorkers:    4,
		StepsPerEpoch: 10,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPoolEpochBaseline(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeBaseline,
		NumWorkers:    4,
		StepsPerEpoch: 10,
		Seed:          1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifierPoolParallel(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeV2,
		NumWorkers:    8,
		StepsPerEpoch: 10,
		Verifiers:     4,
		Seed:          2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStep measures one batch optimization step: the historical
// serial path ("serial") against the chunked deterministic runtime
// (internal/parallel) at 1 and NumCPU workers. The chunked variants are
// bit-identical to each other for any worker count; on a multi-core host the
// per-example forward/backward work spreads across cores (up to the
// 16-chunk-per-batch cap), while on a single-core host the delta is pure
// scheduling overhead.
func BenchmarkTrainStep(b *testing.B) {
	const dim, hidden, classes, batch = 256, 512, 10, 32
	build := func() *nn.Network {
		rng := tensor.NewRNG(7)
		net, err := nn.NewNetwork(
			nn.NewDense(dim, hidden, rng),
			nn.NewReLU(hidden),
			nn.NewDense(hidden, classes, rng),
		)
		if err != nil {
			b.Fatal(err)
		}
		return net
	}
	rng := tensor.NewRNG(8)
	xs := make([]tensor.Vector, batch)
	labels := make([]int, batch)
	for i := range xs {
		xs[i] = rng.NormalVector(dim, 0, 1)
		labels[i] = i % classes
	}

	b.Run("serial", func(b *testing.B) {
		net := build()
		opt := &nn.SGDM{LR: 0.01, Momentum: 0.9}
		if _, err := net.TrainBatch(xs, labels, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := net.TrainBatch(xs, labels, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	// "batched" is the whole-batch GEMM fast path with no pool at all: a
	// dense stack drives one shared-parameter replica through the blocked
	// kernels, bit-identical to "serial" at any batch size.
	b.Run("batched", func(b *testing.B) {
		net := build()
		bt, err := nn.NewBatchTrainer(net, nil)
		if err != nil {
			b.Fatal(err)
		}
		opt := &nn.SGDM{LR: 0.01, Momentum: 0.9}
		if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	variants := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		variants = append(variants, n)
	}
	for _, workers := range variants {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			net := build()
			bt, err := nn.NewBatchTrainer(net, parallel.New(workers))
			if err != nil {
				b.Fatal(err)
			}
			opt := &nn.SGDM{LR: 0.01, Momentum: 0.9}
			// Warm up: the first step lazily builds the per-chunk replicas.
			if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bt.TrainBatch(xs, labels, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLSHHashWorkers is BenchmarkLSHHash through the group-parallel
// path at NumCPU workers (bit-identical digests).
func BenchmarkLSHHashWorkers(b *testing.B) {
	const dim = 4096
	fam, err := lsh.NewFamily(dim, lsh.Params{R: 1, K: 4, L: 4}, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.NewRNG(2).NormalVector(dim, 0, 1)
	p := parallel.New(runtime.NumCPU())
	b.SetBytes(int64(8 * dim))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fam.HashPool(p, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoolEpochV2Workers is BenchmarkPoolEpochV2 with the deterministic
// compute pool sized to the host: parallel batch training in every worker,
// pooled commitment hashing, and interval-parallel verification. Protocol
// results are bit-identical to any other worker count ≥ 1.
func BenchmarkPoolEpochV2Workers(b *testing.B) {
	p, err := rpolapi.NewPool(rpolapi.PoolConfig{
		TaskName:      "resnet18-cifar10",
		Scheme:        rpolapi.SchemeV2,
		NumWorkers:    4,
		StepsPerEpoch: 10,
		Seed:          1,
		Workers:       runtime.NumCPU(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunEpoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSamplingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SamplingSweep(experiments.SamplingSweepOptions{Trials: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOptimizerSweep(b *testing.B) {
	opts := experiments.OptimizerSweepOptions{Optimizers: []string{"sgd", "sgdm"}, Runs: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OptimizerSweep(opts); err != nil {
			b.Fatal(err)
		}
	}
}
