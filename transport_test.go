package rpol_test

import (
	"sync"
	"testing"

	rpolapi "rpol"
)

// TestDistributedDeploymentThroughFacade assembles a manager and remote
// workers entirely through the public façade, over the in-memory fabric.
func TestDistributedDeploymentThroughFacade(t *testing.T) {
	spec, err := rpolapi.Task("resnet18-cifar10")
	if err != nil {
		t.Fatal(err)
	}
	_, train, _, err := spec.BuildProxy(61)
	if err != nil {
		t.Fatal(err)
	}
	const n = 2
	shards, err := train.Partition(n + 1)
	if err != nil {
		t.Fatal(err)
	}

	bus := rpolapi.NewBus()
	var wg sync.WaitGroup
	defer func() {
		bus.Close()
		wg.Wait()
	}()

	managerEP, err := bus.Register("manager")
	if err != nil {
		t.Fatal(err)
	}
	port, err := rpolapi.NewManagerPort(managerEP)
	if err != nil {
		t.Fatal(err)
	}

	profiles := rpolapi.GPUProfiles()
	workers := make([]rpolapi.ProtocolWorker, 0, n)
	shardMap := make(map[string]*rpolapi.Dataset, n)
	for i := 0; i < n; i++ {
		id := "fw" + string(rune('0'+i))
		net, err := spec.BuildProxyNet(62)
		if err != nil {
			t.Fatal(err)
		}
		local, err := rpolapi.NewHonestWorker(id, profiles[i%len(profiles)], int64(700+i), net, shards[i])
		if err != nil {
			t.Fatal(err)
		}
		ep, err := bus.Register(id)
		if err != nil {
			t.Fatal(err)
		}
		server, err := rpolapi.NewWorkerServer(ep, local)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := server.Run(); err != nil {
				t.Errorf("server: %v", err)
			}
		}()
		remote, err := rpolapi.NewRemoteWorker(id, profiles[i%len(profiles)], port)
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, remote)
		shardMap[id] = shards[i]
	}

	managerNet, err := spec.BuildProxyNet(62)
	if err != nil {
		t.Fatal(err)
	}
	manager, err := rpolapi.NewManager(rpolapi.ManagerConfig{
		Address:         "facade-manager",
		Scheme:          rpolapi.SchemeV2,
		Hyper:           rpolapi.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
		StepsPerEpoch:   10,
		CheckpointEvery: 5,
		Samples:         2,
		GPU:             profiles[0],
		MasterKey:       []byte("facade"),
		Seed:            63,
	}, managerNet, workers, shardMap, shards[n])
	if err != nil {
		t.Fatal(err)
	}
	report, err := manager.RunEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if report.Accepted != n {
		t.Fatalf("accepted %d of %d", report.Accepted, n)
	}
	if bus.Meter().Total() == 0 {
		t.Error("no traffic metered")
	}
}
