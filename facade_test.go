package rpol_test

import (
	"testing"

	rpolapi "rpol"
)

// TestFacadeWrappers exercises the cheap public wrappers end to end so the
// façade stays wired to the internals.
func TestFacadeWrappers(t *testing.T) {
	if len(rpolapi.Tasks()) < 6 {
		t.Errorf("task registry too small: %d", len(rpolapi.Tasks()))
	}
	if _, err := rpolapi.Task("resnet18-cifar10"); err != nil {
		t.Errorf("Task: %v", err)
	}
	if _, err := rpolapi.Task("nope"); err == nil {
		t.Error("unknown task accepted")
	}

	if _, err := rpolapi.Fig1(rpolapi.Fig1Options{}); err != nil {
		t.Errorf("Fig1: %v", err)
	}
	if _, err := rpolapi.Table2(rpolapi.Table2Options{}); err != nil {
		t.Errorf("Table2: %v", err)
	}
	if _, err := rpolapi.Table3(rpolapi.Table3Options{}); err != nil {
		t.Errorf("Table3: %v", err)
	}

	errProb, err := rpolapi.SoundnessError(0.5, 0.05, 3)
	if err != nil || errProb <= 0 || errProb >= 1 {
		t.Errorf("SoundnessError = %v, %v", errProb, err)
	}

	chain := rpolapi.NewChain()
	if chain.Height() != 0 {
		t.Errorf("genesis height = %d", chain.Height())
	}
}

// TestFacadeTrainingWrappers covers the training-backed wrappers with tiny
// configurations.
func TestFacadeTrainingWrappers(t *testing.T) {
	if _, err := rpolapi.Fig3(rpolapi.Fig3Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 1, StepsPerEpoch: 5,
	}); err != nil {
		t.Errorf("Fig3: %v", err)
	}
	if _, err := rpolapi.Table1(rpolapi.Table1Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 1, StepsPerEpoch: 5, AttackAddresses: 1,
	}); err != nil {
		t.Errorf("Table1: %v", err)
	}
	if _, err := rpolapi.Fig4(rpolapi.Fig4Options{Shards: 2, StepsPerEpoch: 10}); err != nil {
		t.Errorf("Fig4: %v", err)
	}
	if _, err := rpolapi.Fig5(rpolapi.Fig5Options{
		Tasks: []string{"resnet18-cifar10"}, Epochs: 1,
	}); err != nil {
		t.Errorf("Fig5: %v", err)
	}
	if _, err := rpolapi.Fig6(rpolapi.Fig6Options{
		Tasks: []string{"resnet18-cifar10"}, AdversaryFractions: []float64{0.5},
		Epochs: 1, NumWorkers: 3, StepsPerEpoch: 5,
	}); err != nil {
		t.Errorf("Fig6: %v", err)
	}
}
