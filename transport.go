package rpol

import (
	"rpol/internal/checkpoint"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/netsim"
	"rpol/internal/nn"
	"rpol/internal/rpol"
	"rpol/internal/wire"
)

// This file exposes the building blocks for custom and distributed
// deployments: the protocol roles (manager, workers, verifiers), the data
// substrate, and the two message fabrics (in-memory bus and TCP hub) with
// the wire adapters that let the unmodified manager drive workers behind a
// network.

// Protocol roles and data types.
type (
	// Manager coordinates a pool of workers: calibration, task
	// distribution, commitment collection, sampling-based verification,
	// and aggregation.
	Manager = rpol.Manager
	// ManagerConfig assembles a Manager.
	ManagerConfig = rpol.ManagerConfig
	// ProtocolWorker is the worker interface the manager drives; implement
	// it for custom participants.
	ProtocolWorker = rpol.Worker
	// HonestWorker is the protocol-abiding worker implementation.
	HonestWorker = rpol.HonestWorker
	// TaskParams is one epoch's training assignment.
	TaskParams = rpol.TaskParams
	// Hyper bundles the training hyper-parameters the manager distributes.
	Hyper = rpol.Hyper
	// EpochResult is a worker's submission for one epoch.
	EpochResult = rpol.EpochResult
	// VerifyOutcome reports one submission's verification.
	VerifyOutcome = rpol.VerifyOutcome
	// Dataset is an indexable labelled dataset.
	Dataset = dataset.Dataset
	// GPUProfile describes one accelerator model.
	GPUProfile = gpu.Profile
	// Network is a trainable model (the internal/nn sequential stack).
	Network = nn.Network
	// CheckpointStore persists a worker's training proofs.
	CheckpointStore = checkpoint.Store
)

// Message fabrics.
type (
	// Bus is the in-memory metered message fabric.
	Bus = netsim.Bus
	// TCPHub is the sockets-backed fabric with the same semantics.
	TCPHub = netsim.TCPHub
	// TCPEndpoint is a client connection to a TCPHub.
	TCPEndpoint = netsim.TCPEndpoint
	// Transport is the endpoint surface shared by both fabrics.
	Transport = wire.Transport
	// ManagerPort is the manager's endpoint shared by its remote-worker
	// proxies.
	ManagerPort = wire.ManagerPort
	// RemoteWorker proxies a worker living behind the fabric; it satisfies
	// ProtocolWorker.
	RemoteWorker = wire.RemoteWorker
	// WorkerServer hosts a worker behind an endpoint.
	WorkerServer = wire.WorkerServer
)

// Fault injection and tolerance.
type (
	// FaultPlan is a seeded, deterministic fault-injection schedule for the
	// message fabrics: per-link drops, delays, and partitions plus
	// per-worker crash-restart windows, replayed bit-identically for the
	// same seed.
	FaultPlan = netsim.FaultPlan
	// FaultConfig parameterizes a FaultPlan (rates, delay bound, window and
	// cycle lengths).
	FaultConfig = netsim.FaultConfig
	// RetryPolicy bounds a ManagerPort request with per-attempt deadlines
	// and backoff on the injected logical clock; exhausted attempts fail
	// with an error wrapping ErrWorkerUnavailable.
	RetryPolicy = wire.RetryPolicy
	// Outcome classifies a worker's epoch: accepted, rejected, or absent.
	Outcome = rpol.Outcome
)

// Outcome values.
const (
	OutcomeAccepted = rpol.OutcomeAccepted
	OutcomeRejected = rpol.OutcomeRejected
	OutcomeAbsent   = rpol.OutcomeAbsent
)

// ErrWorkerUnavailable marks workers that missed their transport deadline;
// the manager records them as OutcomeAbsent under a quorum instead of
// treating them as adversarial.
var ErrWorkerUnavailable = rpol.ErrWorkerUnavailable

// NewFaultPlan derives a deterministic fault plan from seed; use
// DefaultFaultConfig for the standard moderate fault mix.
func NewFaultPlan(seed int64, cfg FaultConfig) *FaultPlan { return netsim.NewFaultPlan(seed, cfg) }

// DefaultFaultConfig returns the moderate fault mix the -faultseed flag
// applies.
func DefaultFaultConfig() FaultConfig { return netsim.DefaultFaultConfig() }

// NewManager builds a pool manager over pre-constructed workers. See
// rpol.ManagerConfig for the knobs (scheme, sampling count q, calibration
// factors, decentralized verification).
func NewManager(cfg ManagerConfig, net *Network, workers []ProtocolWorker, shards map[string]*Dataset, probe *Dataset) (*Manager, error) {
	return rpol.NewManager(cfg, net, workers, shards, probe)
}

// NewHonestWorker builds a protocol-abiding worker on the given simulated
// GPU profile.
func NewHonestWorker(id string, profile GPUProfile, runSeed int64, net *Network, shard *Dataset) (*HonestWorker, error) {
	return rpol.NewHonestWorker(id, profile, runSeed, net, shard)
}

// NewBus returns an in-memory metered message fabric.
func NewBus() *Bus { return netsim.NewBus() }

// NewTCPHub starts a TCP message hub on addr (e.g. "127.0.0.1:0").
func NewTCPHub(addr string) (*TCPHub, error) { return netsim.NewTCPHub(addr) }

// DialHub connects to a TCP hub and registers under name.
func DialHub(addr, name string) (*TCPEndpoint, error) { return netsim.DialHub(addr, name) }

// NewManagerPort wraps a connected transport as the manager's port.
func NewManagerPort(t Transport) (*ManagerPort, error) { return wire.NewManagerPortOver(t) }

// NewRemoteWorker builds a proxy to the worker registered as id.
func NewRemoteWorker(id string, profile GPUProfile, port *ManagerPort) (*RemoteWorker, error) {
	return wire.NewRemoteWorker(id, profile, port)
}

// NewWorkerServer hosts a worker behind a connected transport.
func NewWorkerServer(t Transport, worker ProtocolWorker) (*WorkerServer, error) {
	return wire.NewWorkerServerOver(t, worker)
}

// GPUProfiles returns the paper's four simulated accelerator profiles in
// descending performance order.
func GPUProfiles() []GPUProfile { return gpu.Profiles() }
