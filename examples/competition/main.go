// Competition: two mining pools race on the PoUW blockchain. Both pools
// contain 30% replay attackers, but pool A verifies its workers with RPoLv2
// while pool B runs the insecure baseline. After training, both propose
// their models; the consensus round releases the test set and elects the
// best generalizer — the verified pool's cleaner model wins the block and
// the reward. A thief then tries to claim the winning model and is rejected
// by the AMLayer ownership check.
//
// Run with:
//
//	go run ./examples/competition
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"rpol/internal/amlayer"
	"rpol/internal/blockchain"
	"rpol/internal/dataset"
	"rpol/internal/pool"
	"rpol/internal/rpol"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const poolStackDepth = 3 // matches internal/pool's AMLayer depth

func buildPool(wallet *blockchain.Wallet, scheme rpol.Scheme, seed int64) (*pool.Pool, error) {
	return pool.New(pool.Config{
		TaskName:       "resnet18-cifar10",
		Scheme:         scheme,
		NumWorkers:     6,
		Adv1Fraction:   0.34, // two replay attackers in each pool
		UseAMLayer:     true,
		ManagerAddress: wallet.Address(),
		Seed:           seed,
	})
}

func run() error {
	walletA, err := blockchain.NewWallet(rand.Reader)
	if err != nil {
		return err
	}
	walletB, err := blockchain.NewWallet(rand.Reader)
	if err != nil {
		return err
	}

	poolA, err := buildPool(walletA, rpol.SchemeV2, 11) // verified
	if err != nil {
		return err
	}
	poolB, err := buildPool(walletB, rpol.SchemeBaseline, 11) // insecure
	if err != nil {
		return err
	}

	fmt.Println("two pools, both 30% replay attackers:")
	fmt.Printf("  pool A (%s…): RPoLv2 verification\n", walletA.Address()[:8])
	fmt.Printf("  pool B (%s…): no verification\n", walletB.Address()[:8])
	fmt.Println()

	const epochs = 5
	for e := 0; e < epochs; e++ {
		sa, err := poolA.RunEpoch()
		if err != nil {
			return err
		}
		sb, err := poolB.RunEpoch()
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: pool A accuracy %.3f (detected %d cheaters) | pool B accuracy %.3f\n",
			e, sa.TestAccuracy, sa.DetectedAdversaries, sb.TestAccuracy)
	}

	// Both pools propose their trained models for the published task.
	task := blockchain.Task{
		ID: "block-42", ModelSpec: "resnet18-cifar10",
		MinProposals: 2, Reward: 1000, TargetAccuracy: 0.99,
	}
	round, err := blockchain.NewRound(task, amlayer.DefaultConfig())
	if err != nil {
		return err
	}
	round.AMLDepth = poolStackDepth
	chain := blockchain.NewChain()

	netA, err := poolA.CandidateNet()
	if err != nil {
		return err
	}
	if err := round.Propose(blockchain.Candidate{
		Proposer: walletA.Address(), Net: netA,
		PubKey: walletA.PublicKey(), Sig: blockchain.SignCandidate(walletA, netA),
	}); err != nil {
		return err
	}
	netB, err := poolB.CandidateNet()
	if err != nil {
		return err
	}
	if err := round.Propose(blockchain.Candidate{
		Proposer: walletB.Address(), Net: netB,
		PubKey: walletB.PublicKey(), Sig: blockchain.SignCandidate(walletB, netB),
	}); err != nil {
		return err
	}

	// Enough proposals arrived: the test set is released and the round
	// decides. Both pools trained the same public task, so pool A's test
	// split is the canonical test set.
	xs, ys := poolA.TestSet()
	test := &dataset.Dataset{NumClasses: poolA.Spec().ProxyClasses, Dim: poolA.Spec().ProxyDim}
	for i := range xs {
		test.Examples = append(test.Examples, dataset.Example{Features: xs[i], Label: ys[i]})
	}
	outcome, err := round.Decide(test, chain)
	if err != nil {
		return err
	}

	fmt.Println()
	winner := "pool B (insecure)"
	if outcome.Winner.Proposer == walletA.Address() {
		winner = "pool A (RPoLv2)"
	}
	fmt.Printf("consensus: %s wins the block at %.3f test accuracy (height %d)\n",
		winner, outcome.Accuracy, outcome.Block.Height)

	// A thief re-signs the winning model with its own wallet. The model's
	// AMLayer still encodes the winner's address, so ownership verification
	// fails and the candidate is discarded.
	thief, err := blockchain.NewWallet(rand.Reader)
	if err != nil {
		return err
	}
	theftRound, err := blockchain.NewRound(blockchain.Task{
		ID: "block-43", ModelSpec: task.ModelSpec, MinProposals: 1, Reward: 1000, TargetAccuracy: 0.99,
	}, amlayer.DefaultConfig())
	if err != nil {
		return err
	}
	theftRound.AMLDepth = poolStackDepth
	if err := theftRound.Propose(blockchain.Candidate{
		Proposer: thief.Address(), Net: outcome.Winner.Net,
		PubKey: thief.PublicKey(), Sig: blockchain.SignCandidate(thief, outcome.Winner.Net),
	}); err != nil {
		return err
	}
	_, err = theftRound.Decide(test, chain)
	fmt.Println()
	if err != nil {
		fmt.Printf("theft attempt by %s…: rejected (%v)\n", thief.Address()[:8], err)
	} else {
		fmt.Println("theft attempt unexpectedly succeeded!")
	}
	if err := chain.Verify(); err != nil {
		return err
	}
	fmt.Printf("chain verified at height %d\n", chain.Height())
	return nil
}
