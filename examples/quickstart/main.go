// Quickstart: the smallest end-to-end RPoL flow. A pool manager coordinates
// three honest workers for a few verified epochs of a proxy DNN task, and
// the program prints per-epoch accuracy and verification outcomes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rpol/internal/pool"
	"rpol/internal/rpol"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Build a pool of 3 honest workers training the ResNet18/CIFAR-10 proxy
	// task under RPoLv2 (LSH-optimized verification).
	p, err := pool.New(pool.Config{
		TaskName:   "resnet18-cifar10",
		Scheme:     rpol.SchemeV2,
		NumWorkers: 3,
		Seed:       42,
	})
	if err != nil {
		return err
	}

	fmt.Println("RPoL quickstart: 3 honest workers, RPoLv2 verification")
	fmt.Println()
	for epoch := 0; epoch < 4; epoch++ {
		stats, err := p.RunEpoch()
		if err != nil {
			return err
		}
		cal := stats.Calibration
		fmt.Printf("epoch %d: accuracy %.3f, accepted %d/%d, α=%.2g β=%.2g lsh={r=%.2g,k=%d,l=%d}\n",
			stats.Epoch, stats.TestAccuracy, stats.Accepted,
			stats.Accepted+stats.Rejected,
			cal.Alpha, cal.Beta, cal.Params.R, cal.Params.K, cal.Params.L)
	}

	fmt.Println()
	fmt.Println("rewards:")
	for id, r := range p.Rewards() {
		fmt.Printf("  %s: %.0f accepted epochs\n", id, r)
	}
	return nil
}
