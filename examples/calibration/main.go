// Calibration: a walk-through of RPoL's adaptive LSH calibration
// (Sec. V-C). For each epoch of a task, the manager trains its probe
// sub-task twice on the pool's top-2 GPUs, measures the reproduction
// errors, derives α (error tolerance) and β = 5α (spoof threshold), solves
// the Eq. (6) optimization for the LSH parameters under the k·l ≤ 16
// budget, and prints the resulting matching probabilities.
//
// Run with:
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"rpol/internal/gpu"
	"rpol/internal/lsh"
	"rpol/internal/modelzoo"
	"rpol/internal/prf"
	"rpol/internal/rpol"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := modelzoo.Get("resnet18-cifar10")
	if err != nil {
		return err
	}
	_, train, _, err := spec.BuildProxy(5)
	if err != nil {
		return err
	}
	halves, err := train.Partition(2)
	if err != nil {
		return err
	}
	net, err := spec.BuildProxyNet(6)
	if err != nil {
		return err
	}

	top1, top2, err := gpu.TopTwo(gpu.Profiles())
	if err != nil {
		return err
	}
	fmt.Printf("adaptive LSH calibration for %s (probe on %s + %s, K_lsh = 16)\n\n",
		spec.Name, top1.Name, top2.Name)

	calibrator := &rpol.Calibrator{Net: net, Shard: halves[0], XFactor: 5, KLsh: 16}
	global := net.ParamVector()
	for epoch := 0; epoch < 4; epoch++ {
		p := rpol.TaskParams{
			Epoch:           epoch,
			Global:          global.Clone(),
			Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
			Nonce:           prf.DeriveNonce([]byte("calibration-example"), spec.Name, epoch),
			Steps:           15,
			CheckpointEvery: 5,
		}
		cal, fam, err := calibrator.Calibrate(p, top1, top2,
			[2]int64{int64(epoch)*10 + 1, int64(epoch)*10 + 2}, int64(epoch)*10+3)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d:\n", epoch)
		fmt.Printf("  measured max reproduction error: %.4g (over %d checkpoints)\n",
			cal.MaxError, cal.NumProbes)
		fmt.Printf("  α = mean+std = %.4g, β = 5α = %.4g\n", cal.Alpha, cal.Beta)
		fmt.Printf("  optimized LSH: r=%.4g k=%d l=%d (budget k·l=%d ≤ 16)\n",
			cal.Params.R, cal.Params.K, cal.Params.L, cal.Params.K*cal.Params.L)
		fmt.Printf("  Pr_lsh(α) = %.3f (honest match), Pr_lsh(β) = %.3f (spoof match)\n",
			lsh.MatchProb(cal.Alpha, cal.Params), lsh.MatchProb(cal.Beta, cal.Params))
		fmt.Printf("  worst-case FNR %.3f / FPR %.3f; family dim %d\n\n",
			cal.WorstFNR, cal.WorstFPR, fam.Dim())

		// Advance the global model one honest epoch so the next calibration
		// sees the error profile of a later training stage.
		device, err := gpu.NewDevice(top2, int64(epoch)*10+7)
		if err != nil {
			return err
		}
		trainer := &rpol.Trainer{Net: net, Shard: halves[1], Device: device}
		trace, err := trainer.RunEpoch(p)
		if err != nil {
			return err
		}
		global = trace.Final()
	}
	return nil
}
