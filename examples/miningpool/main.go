// Miningpool: a realistic pool under attack. Ten workers — six honest, two
// replay attackers (Adv1), two spoofing attackers (Adv2) — train
// collaboratively for several epochs under RPoLv2 verification. The program
// prints per-epoch detection results and then settles the mining reward
// through the escrow contract: verified workers split the reward
// proportionally to their accepted contributions; detected cheaters get
// nothing.
//
// Run with:
//
//	go run ./examples/miningpool
package main

import (
	"fmt"
	"log"
	"sort"

	"rpol/internal/blockchain"
	"rpol/internal/pool"
	"rpol/internal/rpol"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p, err := pool.New(pool.Config{
		TaskName:     "resnet18-cifar10",
		Scheme:       rpol.SchemeV2,
		NumWorkers:   10,
		Adv1Fraction: 0.2,
		Adv2Fraction: 0.2,
		UseAMLayer:   true,
		Seed:         7,
	})
	if err != nil {
		return err
	}

	fmt.Println("mining pool: 6 honest + 2 replay (Adv1) + 2 spoofing (Adv2) workers, RPoLv2")
	fmt.Println()
	const epochs = 5
	for e := 0; e < epochs; e++ {
		stats, err := p.RunEpoch()
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: accuracy %.3f | detected %d adversaries, missed %d, false rejections %d\n",
			stats.Epoch, stats.TestAccuracy,
			stats.DetectedAdversaries, stats.MissedAdversaries, stats.FalseRejections)
	}

	// The pool's block won the round: settle the mining reward through the
	// escrow. Each worker is credited one unit per accepted epoch.
	escrow, err := blockchain.NewEscrow(0.05) // 5% manager fee
	if err != nil {
		return err
	}
	const miningReward = 1000.0
	if err := escrow.Deposit(miningReward); err != nil {
		return err
	}
	rewards := p.Rewards()
	ids := make([]string, 0, len(rewards))
	for id := range rewards {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if rewards[id] > 0 {
			if err := escrow.Credit(id, rewards[id]); err != nil {
				return err
			}
		}
	}
	managerCut, payouts, err := escrow.Settle()
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Printf("escrow settlement of %.0f reward units (manager fee %.0f):\n", miningReward, managerCut)
	roles := p.Roles()
	for _, payout := range payouts {
		fmt.Printf("  %-12s (%s): %.1f\n", payout.WorkerID, roles[payout.WorkerID], payout.Amount)
	}
	fmt.Println()
	fmt.Println("adversaries earned nothing: their submissions never passed verification.")
	return nil
}
