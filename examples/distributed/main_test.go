package main

import "testing"

// TestRun executes the example end to end; examples are part of the public
// surface and must keep working.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example run skipped in -short mode")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
