// Distributed: the same pool protocol, but over real sockets. A TCP hub
// routes protocol messages between the manager and the workers; each worker
// runs behind a WorkerServer in its own goroutine (in a real deployment,
// its own machine), persists its checkpoints to a disk-backed store, and
// the unmodified rpol.Manager coordinates and verifies everything through
// RemoteWorker proxies. The hub meters every byte, so the printout compares
// measured verification traffic against the cost model's prediction.
//
// Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"rpol/internal/checkpoint"
	"rpol/internal/dataset"
	"rpol/internal/gpu"
	"rpol/internal/modelzoo"
	"rpol/internal/netsim"
	"rpol/internal/rpol"
	"rpol/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hub, err := netsim.NewTCPHub("127.0.0.1:0")
	if err != nil {
		return err
	}
	// Shutdown order matters: closing the hub is what unblocks the worker
	// servers, so it must happen before waiting for them.
	var wg sync.WaitGroup
	defer func() {
		hub.Close()
		wg.Wait()
	}()
	fmt.Printf("hub listening on %s\n\n", hub.Addr())

	spec, err := modelzoo.Get("resnet18-cifar10")
	if err != nil {
		return err
	}
	_, train, _, err := spec.BuildProxy(21)
	if err != nil {
		return err
	}
	const n = 4
	shards, err := train.Partition(n + 1)
	if err != nil {
		return err
	}

	ckptRoot, err := os.MkdirTemp("", "rpol-checkpoints-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(ckptRoot) }()

	managerConn, err := netsim.DialHub(hub.Addr(), "manager")
	if err != nil {
		return err
	}
	defer func() { _ = managerConn.Close() }()
	port, err := wire.NewManagerPortOver(managerConn)
	if err != nil {
		return err
	}

	profiles := gpu.Profiles()
	workers := make([]rpol.Worker, 0, n)
	shardMap := make(map[string]*dataset.Dataset, n)
	locals := make([]*rpol.HonestWorker, 0, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("worker-%d", i)
		profile := profiles[i%len(profiles)]
		net, err := spec.BuildProxyNet(22)
		if err != nil {
			return err
		}
		local, err := rpol.NewHonestWorker(id, profile, int64(500+i), net, shards[i])
		if err != nil {
			return err
		}
		store, err := checkpoint.NewDiskStore(filepath.Join(ckptRoot, id))
		if err != nil {
			return err
		}
		local.SetStore(store)
		locals = append(locals, local)

		conn, err := netsim.DialHub(hub.Addr(), id)
		if err != nil {
			return err
		}
		server, err := wire.NewWorkerServerOver(conn, local)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := server.Run(); err != nil {
				log.Printf("server %s: %v", id, err)
			}
		}()

		remote, err := wire.NewRemoteWorker(id, profile, port)
		if err != nil {
			return err
		}
		workers = append(workers, remote)
		shardMap[id] = shards[i]
	}

	managerNet, err := spec.BuildProxyNet(22)
	if err != nil {
		return err
	}
	manager, err := rpol.NewManager(rpol.ManagerConfig{
		Address:         "distributed-manager",
		Scheme:          rpol.SchemeV2,
		Hyper:           rpol.Hyper{Optimizer: "sgdm", LR: 0.02, BatchSize: spec.ProxyBatchSize},
		StepsPerEpoch:   10,
		CheckpointEvery: 5,
		Samples:         2,
		GPU:             gpu.G3090,
		MasterKey:       []byte("distributed"),
		Seed:            23,
	}, managerNet, workers, shardMap, shards[n])
	if err != nil {
		return err
	}

	for epoch := 0; epoch < 3; epoch++ {
		report, err := manager.RunEpoch()
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: accepted %d/%d, verification proofs %.1f KB (cost model), hub metered %.1f KB total\n",
			report.Epoch, report.Accepted, report.Accepted+report.Rejected,
			float64(report.VerifyCommBytes)/1024, float64(hub.Meter().Total())/1024)
	}

	var stored int64
	for _, local := range locals {
		stored += local.StorageBytes()
	}
	fmt.Printf("\nworkers hold %.1f KB of checkpoint proofs on disk under %s\n",
		float64(stored)/1024, ckptRoot)
	byKind := hub.Meter().ByKind()
	fmt.Println("traffic by message kind:")
	for _, kind := range []string{wire.KindTask, wire.KindResult, wire.KindOpenRequest, wire.KindOpenResponse} {
		fmt.Printf("  %-14s %8.1f KB\n", kind, float64(byKind[kind])/1024)
	}
	return nil
}
