package rpol_test

// Guards the committed benchmark record BENCH_pr3.json: the file is the
// evidence trail for the deterministic-parallelism PR's performance claims,
// so it must stay parseable and structurally sound. The test uses only the
// standard library and fails on a malformed file — missing fields, unknown
// keys, non-positive measurements, or entries whose names no longer look
// like Go benchmarks.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// benchMeasure is one benchmark measurement triple.
type benchMeasure struct {
	NsOp     int64 `json:"ns_op"`
	BOp      int64 `json:"b_op"`
	AllocsOp int64 `json:"allocs_op"`
}

// benchEntry pairs a benchmark with its before/after measurements; Before
// is null for benchmarks introduced by the PR itself.
type benchEntry struct {
	Name   string        `json:"name"`
	Before *benchMeasure `json:"before"`
	After  *benchMeasure `json:"after"`
}

// benchRecord is the BENCH_pr3.json document.
type benchRecord struct {
	PR        int               `json:"pr"`
	Benchtime string            `json:"benchtime"`
	Units     map[string]string `json:"units"`
	Host      struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPU    string `json:"cpu"`
		NumCPU int    `json:"num_cpu"`
		Note   string `json:"note"`
	} `json:"host"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

func TestBenchRecordWellFormed(t *testing.T) {
	data, err := os.ReadFile("BENCH_pr3.json")
	if err != nil {
		t.Fatalf("benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec benchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("BENCH_pr3.json malformed: %v", err)
	}
	if dec.More() {
		t.Fatal("BENCH_pr3.json: trailing data after the record")
	}
	if rec.PR != 3 {
		t.Errorf("pr = %d, want 3", rec.PR)
	}
	if rec.Host.NumCPU < 1 || rec.Host.CPU == "" || rec.Host.Note == "" {
		t.Errorf("host block incomplete: %+v", rec.Host)
	}
	if len(rec.Benchmarks) == 0 {
		t.Fatal("no benchmark entries")
	}
	seen := make(map[string]bool, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if !strings.HasPrefix(b.Name, "Benchmark") {
			t.Errorf("entry %q: name is not a Go benchmark", b.Name)
		}
		if seen[b.Name] {
			t.Errorf("entry %q: duplicate", b.Name)
		}
		seen[b.Name] = true
		if b.After == nil {
			t.Errorf("entry %q: missing after measurement", b.Name)
			continue
		}
		for _, m := range []*benchMeasure{b.Before, b.After} {
			if m == nil {
				continue // before is null for benchmarks the PR introduced
			}
			if m.NsOp <= 0 || m.BOp < 0 || m.AllocsOp < 0 {
				t.Errorf("entry %q: implausible measurement %+v", b.Name, *m)
			}
		}
	}
}
