package rpol_test

// Guards the committed benchmark records (BENCH_pr3.json, BENCH_pr8.json):
// the files are the evidence trail for the performance PRs' claims, so they
// must stay parseable and structurally sound. The tests use only the
// standard library and fail on a malformed file — missing fields, unknown
// keys, non-positive measurements, or entries whose names no longer look
// like Go benchmarks. BENCH_pr8.json additionally carries a comparator
// gate: the recorded batched TrainStep must hold its claimed >=2x margin
// over the serial path, so a re-record that loses the speedup fails CI
// instead of silently weakening the claim.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// benchMeasure is one benchmark measurement triple.
type benchMeasure struct {
	NsOp     int64 `json:"ns_op"`
	BOp      int64 `json:"b_op"`
	AllocsOp int64 `json:"allocs_op"`
}

// benchEntry pairs a benchmark with its before/after measurements; Before
// is null for benchmarks introduced by the PR itself.
type benchEntry struct {
	Name   string        `json:"name"`
	Before *benchMeasure `json:"before"`
	After  *benchMeasure `json:"after"`
}

// commEntry is one protocol-level byte measurement: the same seeded run's
// communication bill under the legacy inline hash list and under the
// streaming Merkle commitment.
type commEntry struct {
	Name        string `json:"name"`
	Leaves      int    `json:"leaves"`
	Samples     int    `json:"samples"`
	ProofPulls  int    `json:"proof_pulls"`
	ProofSize   int    `json:"proof_size"`
	DigestSize  int    `json:"digest_size"`
	LegacyBytes int64  `json:"legacy_bytes"`
	MerkleBytes int64  `json:"merkle_bytes"`
}

// benchRecord is the committed benchmark document.
type benchRecord struct {
	PR        int               `json:"pr"`
	Benchtime string            `json:"benchtime"`
	Units     map[string]string `json:"units"`
	Host      struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPU    string `json:"cpu"`
		NumCPU int    `json:"num_cpu"`
		Note   string `json:"note"`
	} `json:"host"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Comm carries protocol byte measurements (BENCH_pr9 and later);
	// absent from earlier records.
	Comm []commEntry `json:"comm,omitempty"`
}

// loadBenchRecord parses and structurally validates one committed record,
// returning the entries keyed by benchmark name.
func loadBenchRecord(t *testing.T, path string, wantPR int) map[string]benchEntry {
	t.Helper()
	entries, _ := loadBenchRecordComm(t, path, wantPR)
	return entries
}

// loadBenchRecordComm is loadBenchRecord plus the record's comm section.
func loadBenchRecordComm(t *testing.T, path string, wantPR int) (map[string]benchEntry, []commEntry) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec benchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("%s malformed: %v", path, err)
	}
	if dec.More() {
		t.Fatalf("%s: trailing data after the record", path)
	}
	if rec.PR != wantPR {
		t.Errorf("pr = %d, want %d", rec.PR, wantPR)
	}
	if rec.Host.NumCPU < 1 || rec.Host.CPU == "" || rec.Host.Note == "" {
		t.Errorf("host block incomplete: %+v", rec.Host)
	}
	if len(rec.Benchmarks) == 0 {
		t.Fatal("no benchmark entries")
	}
	entries := make(map[string]benchEntry, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if !strings.HasPrefix(b.Name, "Benchmark") {
			t.Errorf("entry %q: name is not a Go benchmark", b.Name)
		}
		if _, dup := entries[b.Name]; dup {
			t.Errorf("entry %q: duplicate", b.Name)
		}
		entries[b.Name] = b
		if b.After == nil {
			t.Errorf("entry %q: missing after measurement", b.Name)
			continue
		}
		for _, m := range []*benchMeasure{b.Before, b.After} {
			if m == nil {
				continue // before is null for benchmarks the PR introduced
			}
			if m.NsOp <= 0 || m.BOp < 0 || m.AllocsOp < 0 {
				t.Errorf("entry %q: implausible measurement %+v", b.Name, *m)
			}
		}
	}
	for _, c := range rec.Comm {
		if c.Name == "" || c.Leaves < 0 || c.LegacyBytes <= 0 || c.MerkleBytes <= 0 {
			t.Errorf("comm entry %+v: implausible measurement", c)
		}
	}
	return entries, rec.Comm
}

func TestBenchRecordWellFormed(t *testing.T) {
	loadBenchRecord(t, "BENCH_pr3.json", 3)
}

// TestBenchRecordPR8Gates validates BENCH_pr8.json and enforces the PR's
// headline claims on the recorded numbers themselves.
func TestBenchRecordPR8Gates(t *testing.T) {
	entries := loadBenchRecord(t, "BENCH_pr8.json", 8)

	// Gate 1: the batched GEMM TrainStep must be at least 2x the serial
	// per-example path.
	serial, ok := entries["BenchmarkTrainStep/serial"]
	if !ok || serial.After == nil {
		t.Fatal("record lacks BenchmarkTrainStep/serial")
	}
	batched, ok := entries["BenchmarkTrainStep/batched"]
	if !ok || batched.After == nil {
		t.Fatal("record lacks BenchmarkTrainStep/batched")
	}
	if serial.After.NsOp < 2*batched.After.NsOp {
		t.Errorf("batched TrainStep speedup %.2fx below the claimed 2x (serial %d ns/op, batched %d ns/op)",
			float64(serial.After.NsOp)/float64(batched.After.NsOp),
			serial.After.NsOp, batched.After.NsOp)
	}

	// Gate 2: the steady-state binary encode paths must be allocation-free.
	for _, name := range []string{"BenchmarkEncodeTask", "BenchmarkEncodeResult"} {
		e, ok := entries[name]
		if !ok || e.After == nil {
			t.Errorf("record lacks %s", name)
			continue
		}
		if e.After.AllocsOp != 0 {
			t.Errorf("%s: %d allocs/op recorded, want 0 (warm reused buffer)", name, e.After.AllocsOp)
		}
	}

	// Gate 3: the binary task decode must beat the legacy JSON+base64
	// fallback it replaced (same LSH-free task shape).
	bin, binOK := entries["BenchmarkDecodeTask"]
	legacy, legOK := entries["BenchmarkDecodeTaskLegacyJSON"]
	if !binOK || !legOK || bin.After == nil || legacy.After == nil {
		t.Fatal("record lacks the decode pair (BenchmarkDecodeTask, BenchmarkDecodeTaskLegacyJSON)")
	}
	if bin.After.NsOp >= legacy.After.NsOp {
		t.Errorf("binary decode (%d ns/op) not faster than the legacy JSON fallback (%d ns/op)",
			bin.After.NsOp, legacy.After.NsOp)
	}
}

// TestBenchRecordPR9Gates validates BENCH_pr9.json — the streaming Merkle
// commitment record — and enforces the O(n) vs O(log n) claim on the
// recorded byte counts themselves.
func TestBenchRecordPR9Gates(t *testing.T) {
	entries, comm := loadBenchRecordComm(t, "BENCH_pr9.json", 9)

	byName := make(map[string]commEntry, len(comm))
	for _, c := range comm {
		if _, dup := byName[c.Name]; dup {
			t.Errorf("comm entry %q: duplicate", c.Name)
		}
		byName[c.Name] = c
	}

	// Gate 1: the verification commitment share. Legacy is O(n) — the full
	// hash list plus one inline digest per leaf — while the Merkle scheme
	// must match its closed form exactly: a 32-byte root plus 2q+2 proof
	// pulls of (8 + depth*32) proof bytes and one riding 32-byte digest,
	// with depth = ceil(log2(leaves)).
	for _, name := range []string{
		"verify-commitment-bytes/64-checkpoints",
		"verify-commitment-bytes/1024-checkpoints",
	} {
		c, ok := byName[name]
		if !ok {
			t.Fatalf("record lacks comm entry %q", name)
		}
		if c.Leaves < 65 {
			t.Errorf("%s: %d leaves, want a 64-checkpoint-plus epoch", name, c.Leaves)
		}
		if c.LegacyBytes < 32*int64(c.Leaves) {
			t.Errorf("%s: legacy bytes %d below the 32*n hash-list floor", name, c.LegacyBytes)
		}
		depth := 0
		for w := 1; w < c.Leaves; w *= 2 {
			depth++
		}
		if want := 8 + 32*depth; c.ProofSize != want {
			t.Errorf("%s: proof size %d, want %d for depth %d", name, c.ProofSize, want, depth)
		}
		if want := 2*c.Samples + 2; c.ProofPulls != want {
			t.Errorf("%s: %d proof pulls, want 2q+2 = %d", name, c.ProofPulls, want)
		}
		if want := int64(32 + c.ProofPulls*(c.ProofSize+c.DigestSize)); c.MerkleBytes != want {
			t.Errorf("%s: merkle bytes %d diverge from the O(log n) closed form %d", name, c.MerkleBytes, want)
		}
		if c.MerkleBytes >= c.LegacyBytes {
			t.Errorf("%s: merkle bytes %d not below legacy %d", name, c.MerkleBytes, c.LegacyBytes)
		}
	}

	// Gate 2: the asymptotic separation. Growing the epoch 16x must grow
	// the legacy bill ~linearly while the Merkle bill only gains one tree
	// level per doubling; at 1024 checkpoints the drop must be >= 8x.
	small := byName["verify-commitment-bytes/64-checkpoints"]
	large := byName["verify-commitment-bytes/1024-checkpoints"]
	if large.LegacyBytes < 8*small.LegacyBytes {
		t.Errorf("legacy bytes not O(n): %d at n=64 vs %d at n=1024", small.LegacyBytes, large.LegacyBytes)
	}
	if large.MerkleBytes > 2*small.MerkleBytes {
		t.Errorf("merkle bytes not O(log n): %d at n=64 vs %d at n=1024", small.MerkleBytes, large.MerkleBytes)
	}
	if 8*large.MerkleBytes > large.LegacyBytes {
		t.Errorf("1024-checkpoint drop %.1fx below the claimed 8x (legacy %d, merkle %d)",
			float64(large.LegacyBytes)/float64(large.MerkleBytes), large.LegacyBytes, large.MerkleBytes)
	}

	// Gate 3: the submission frame sheds the inline commitment blob — the
	// root form must save at least the hash list (32 bytes per leaf).
	frame, ok := byName["submission-frame-bytes/64-checkpoints"]
	if !ok {
		t.Fatal("record lacks comm entry submission-frame-bytes/64-checkpoints")
	}
	if saved := frame.LegacyBytes - frame.MerkleBytes; saved < 32*int64(frame.Leaves) {
		t.Errorf("root submission saves only %d bytes, want >= %d (the inline hash list)",
			saved, 32*frame.Leaves)
	}

	// Gate 4: streaming commitment must not cost more than the deferred
	// batch build it replaces, and the steady-state encode paths for the
	// new wire forms must stay allocation-free.
	inc, incOK := entries["BenchmarkIncrementalMerkle"]
	batch, batchOK := entries["BenchmarkMerkleTreeBuild"]
	if !incOK || !batchOK || inc.After == nil || batch.After == nil {
		t.Fatal("record lacks the build pair (BenchmarkIncrementalMerkle, BenchmarkMerkleTreeBuild)")
	}
	if inc.After.NsOp > batch.After.NsOp {
		t.Errorf("incremental build (%d ns/op) slower than batch build (%d ns/op)",
			inc.After.NsOp, batch.After.NsOp)
	}
	for _, name := range []string{"BenchmarkEncodeResultRoot", "BenchmarkEncodeProofResponse"} {
		e, ok := entries[name]
		if !ok || e.After == nil {
			t.Errorf("record lacks %s", name)
			continue
		}
		if e.After.AllocsOp != 0 {
			t.Errorf("%s: %d allocs/op recorded, want 0 (warm reused buffer)", name, e.After.AllocsOp)
		}
	}
}
