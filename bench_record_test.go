package rpol_test

// Guards the committed benchmark records (BENCH_pr3.json, BENCH_pr8.json):
// the files are the evidence trail for the performance PRs' claims, so they
// must stay parseable and structurally sound. The tests use only the
// standard library and fail on a malformed file — missing fields, unknown
// keys, non-positive measurements, or entries whose names no longer look
// like Go benchmarks. BENCH_pr8.json additionally carries a comparator
// gate: the recorded batched TrainStep must hold its claimed >=2x margin
// over the serial path, so a re-record that loses the speedup fails CI
// instead of silently weakening the claim.

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// benchMeasure is one benchmark measurement triple.
type benchMeasure struct {
	NsOp     int64 `json:"ns_op"`
	BOp      int64 `json:"b_op"`
	AllocsOp int64 `json:"allocs_op"`
}

// benchEntry pairs a benchmark with its before/after measurements; Before
// is null for benchmarks introduced by the PR itself.
type benchEntry struct {
	Name   string        `json:"name"`
	Before *benchMeasure `json:"before"`
	After  *benchMeasure `json:"after"`
}

// benchRecord is the committed benchmark document.
type benchRecord struct {
	PR        int               `json:"pr"`
	Benchtime string            `json:"benchtime"`
	Units     map[string]string `json:"units"`
	Host      struct {
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		CPU    string `json:"cpu"`
		NumCPU int    `json:"num_cpu"`
		Note   string `json:"note"`
	} `json:"host"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// loadBenchRecord parses and structurally validates one committed record,
// returning the entries keyed by benchmark name.
func loadBenchRecord(t *testing.T, path string, wantPR int) map[string]benchEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchmark record missing: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rec benchRecord
	if err := dec.Decode(&rec); err != nil {
		t.Fatalf("%s malformed: %v", path, err)
	}
	if dec.More() {
		t.Fatalf("%s: trailing data after the record", path)
	}
	if rec.PR != wantPR {
		t.Errorf("pr = %d, want %d", rec.PR, wantPR)
	}
	if rec.Host.NumCPU < 1 || rec.Host.CPU == "" || rec.Host.Note == "" {
		t.Errorf("host block incomplete: %+v", rec.Host)
	}
	if len(rec.Benchmarks) == 0 {
		t.Fatal("no benchmark entries")
	}
	entries := make(map[string]benchEntry, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if !strings.HasPrefix(b.Name, "Benchmark") {
			t.Errorf("entry %q: name is not a Go benchmark", b.Name)
		}
		if _, dup := entries[b.Name]; dup {
			t.Errorf("entry %q: duplicate", b.Name)
		}
		entries[b.Name] = b
		if b.After == nil {
			t.Errorf("entry %q: missing after measurement", b.Name)
			continue
		}
		for _, m := range []*benchMeasure{b.Before, b.After} {
			if m == nil {
				continue // before is null for benchmarks the PR introduced
			}
			if m.NsOp <= 0 || m.BOp < 0 || m.AllocsOp < 0 {
				t.Errorf("entry %q: implausible measurement %+v", b.Name, *m)
			}
		}
	}
	return entries
}

func TestBenchRecordWellFormed(t *testing.T) {
	loadBenchRecord(t, "BENCH_pr3.json", 3)
}

// TestBenchRecordPR8Gates validates BENCH_pr8.json and enforces the PR's
// headline claims on the recorded numbers themselves.
func TestBenchRecordPR8Gates(t *testing.T) {
	entries := loadBenchRecord(t, "BENCH_pr8.json", 8)

	// Gate 1: the batched GEMM TrainStep must be at least 2x the serial
	// per-example path.
	serial, ok := entries["BenchmarkTrainStep/serial"]
	if !ok || serial.After == nil {
		t.Fatal("record lacks BenchmarkTrainStep/serial")
	}
	batched, ok := entries["BenchmarkTrainStep/batched"]
	if !ok || batched.After == nil {
		t.Fatal("record lacks BenchmarkTrainStep/batched")
	}
	if serial.After.NsOp < 2*batched.After.NsOp {
		t.Errorf("batched TrainStep speedup %.2fx below the claimed 2x (serial %d ns/op, batched %d ns/op)",
			float64(serial.After.NsOp)/float64(batched.After.NsOp),
			serial.After.NsOp, batched.After.NsOp)
	}

	// Gate 2: the steady-state binary encode paths must be allocation-free.
	for _, name := range []string{"BenchmarkEncodeTask", "BenchmarkEncodeResult"} {
		e, ok := entries[name]
		if !ok || e.After == nil {
			t.Errorf("record lacks %s", name)
			continue
		}
		if e.After.AllocsOp != 0 {
			t.Errorf("%s: %d allocs/op recorded, want 0 (warm reused buffer)", name, e.After.AllocsOp)
		}
	}

	// Gate 3: the binary task decode must beat the legacy JSON+base64
	// fallback it replaced (same LSH-free task shape).
	bin, binOK := entries["BenchmarkDecodeTask"]
	legacy, legOK := entries["BenchmarkDecodeTaskLegacyJSON"]
	if !binOK || !legOK || bin.After == nil || legacy.After == nil {
		t.Fatal("record lacks the decode pair (BenchmarkDecodeTask, BenchmarkDecodeTaskLegacyJSON)")
	}
	if bin.After.NsOp >= legacy.After.NsOp {
		t.Errorf("binary decode (%d ns/op) not faster than the legacy JSON fallback (%d ns/op)",
			bin.After.NsOp, legacy.After.NsOp)
	}
}
